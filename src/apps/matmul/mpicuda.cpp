// MPI+CUDA baseline: SUMMA (van de Geijn & Watts) over minimpi ranks, one
// GPU per rank — the comparison version of the paper's Fig. 10.  Everything
// is explicit: tile ownership, panel broadcasts along process rows/columns,
// host staging around every transfer, and barrier-delimited timing.
#include "apps/matmul/matmul.hpp"

#include <cstring>

#include <cmath>

namespace apps::matmul {

namespace {

struct Grid {
  int pr = 1, pc = 1;
};

Grid make_grid(int ranks) {
  Grid g;
  g.pr = static_cast<int>(std::sqrt(static_cast<double>(ranks)));
  while (ranks % g.pr != 0) --g.pr;
  g.pc = ranks / g.pr;
  if (g.pr < g.pc) std::swap(g.pr, g.pc);
  return g;
}

// Broadcast `bytes` from `root` to the ranks in `group` (explicit linear
// bcast over point-to-point, the "straightforward implementation" §IV-A2).
void group_bcast(minimpi::Comm& comm, const std::vector<int>& group, int root, void* buf,
                 std::size_t bytes, int tag) {
  if (comm.rank() == root) {
    std::vector<minimpi::Request> reqs;
    for (int r : group) {
      if (r == root) continue;
      reqs.push_back(comm.isend(r, tag, buf, bytes));
    }
    for (auto& q : reqs) q.wait();
  } else {
    comm.recv(root, tag, buf, bytes);
  }
}

}  // namespace

Result run_mpicuda(const Params& p, vt::Clock& clock, int ranks,
                   const simnet::LinkProps& link, const simcuda::DeviceProps& gpu) {
  simnet::Network net(clock, ranks, link);
  minimpi::World world(net);
  simcuda::Platform platform(clock, std::vector<simcuda::DeviceProps>(
                                        static_cast<std::size_t>(ranks), gpu));

  const Grid grid = make_grid(ranks);
  const int nb = p.nb;
  const std::size_t bs = p.bs_phys;
  const std::size_t bb = p.block_bytes();
  const int rows_per = nb / grid.pr;
  const int cols_per = nb / grid.pc;
  if (rows_per * grid.pr != nb || cols_per * grid.pc != nb)
    throw std::invalid_argument("matmul/mpicuda: nb must divide the process grid");

  Result r;
  std::vector<double> rank_seconds(static_cast<std::size_t>(ranks), 0.0);
  double checksum = 0.0;

  std::vector<vt::Thread> rank_threads;
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  for (int rank = 0; rank < ranks; ++rank) {
    rank_threads.emplace_back(clock, "mpirank" + std::to_string(rank), [&, rank] {
      minimpi::Comm comm = world.comm(rank);
      simcuda::Device& dev = platform.device(rank);
      const int my_pr = rank / grid.pc;  // row-major rank grid
      const int my_pc = rank % grid.pc;
      const int row0 = my_pr * rows_per;
      const int col0 = my_pc * cols_per;

      // Local tiles, initialized with the same deterministic fill as every
      // other version so checksums agree.
      auto host_tile = [&](std::vector<std::vector<float>>& store, int idx) {
        return store[static_cast<std::size_t>(idx)].data();
      };
      std::vector<std::vector<float>> ha(static_cast<std::size_t>(rows_per * cols_per),
                                         std::vector<float>(bs * bs));
      std::vector<std::vector<float>> hb(static_cast<std::size_t>(rows_per * cols_per),
                                         std::vector<float>(bs * bs));
      std::vector<std::vector<float>> hc(static_cast<std::size_t>(rows_per * cols_per),
                                         std::vector<float>(bs * bs, 0.0f));
      for (int li = 0; li < rows_per; ++li) {
        for (int lj = 0; lj < cols_per; ++lj) {
          int gi = row0 + li, gj = col0 + lj;
          init_block(host_tile(ha, li * cols_per + lj), bs,
                     p.seed + static_cast<unsigned>(gi * nb + gj));
          init_block(host_tile(hb, li * cols_per + lj), bs,
                     p.seed + 1000 + static_cast<unsigned>(gi * nb + gj));
        }
      }

      // Device state: the owned C tiles stay resident (they accumulate);
      // A and B live in host memory and stream through the panel buffers —
      // all three matrices would not fit a GTX480 at one node.
      std::vector<float*> dc(hc.size());
      for (std::size_t t = 0; t < hc.size(); ++t) {
        dc[t] = static_cast<float*>(dev.malloc(bb));
        if (!dc[t]) throw std::runtime_error("matmul/mpicuda: GPU out of memory");
      }
      std::vector<std::vector<float>> hpanel_a(static_cast<std::size_t>(rows_per),
                                               std::vector<float>(bs * bs));
      std::vector<std::vector<float>> hpanel_b(static_cast<std::size_t>(cols_per),
                                               std::vector<float>(bs * bs));
      std::vector<float*> dpanel_a(static_cast<std::size_t>(rows_per));
      std::vector<float*> dpanel_b(static_cast<std::size_t>(cols_per));
      for (auto& ptr : dpanel_a) ptr = static_cast<float*>(dev.malloc(bb));
      for (auto& ptr : dpanel_b) ptr = static_cast<float*>(dev.malloc(bb));

      // Row/column communicator groups.
      std::vector<int> row_group, col_group;
      for (int c = 0; c < grid.pc; ++c) row_group.push_back(my_pr * grid.pc + c);
      for (int rr = 0; rr < grid.pr; ++rr) col_group.push_back(rr * grid.pc + my_pc);

      for (std::size_t t = 0; t < hc.size(); ++t) dev.memcpy_h2d(dc[t], hc[t].data(), bb);

      comm.barrier();
      double t0 = clock.now();
      simcuda::KernelCost cost{p.task_flops(), 0.0};
      for (int k = 0; k < nb; ++k) {
        // A panel: column owner of k broadcasts A(row0+li, k) along the row.
        int a_owner = my_pr * grid.pc + (k / cols_per);
        for (int li = 0; li < rows_per; ++li) {
          float* hp = hpanel_a[static_cast<std::size_t>(li)].data();
          if (comm.rank() == a_owner)
            std::memcpy(hp, ha[static_cast<std::size_t>(li * cols_per + (k % cols_per))].data(),
                        bb);
          group_bcast(comm, row_group, a_owner, hp, bb, 100 + k * nb + li);
          dev.memcpy_h2d(dpanel_a[static_cast<std::size_t>(li)], hp, bb);
        }
        // B panel: row owner of k broadcasts B(k, col0+lj) along the column.
        int b_owner = (k / rows_per) * grid.pc + my_pc;
        for (int lj = 0; lj < cols_per; ++lj) {
          float* hp = hpanel_b[static_cast<std::size_t>(lj)].data();
          if (comm.rank() == b_owner)
            std::memcpy(hp, hb[static_cast<std::size_t>((k % rows_per) * cols_per + lj)].data(),
                        bb);
          group_bcast(comm, col_group, b_owner, hp, bb, 500000 + k * nb + lj);
          dev.memcpy_h2d(dpanel_b[static_cast<std::size_t>(lj)], hp, bb);
        }
        // Local rank-1 tile updates on the GPU.
        for (int li = 0; li < rows_per; ++li) {
          for (int lj = 0; lj < cols_per; ++lj) {
            const float* ta = dpanel_a[static_cast<std::size_t>(li)];
            const float* tb = dpanel_b[static_cast<std::size_t>(lj)];
            float* tc = dc[static_cast<std::size_t>(li * cols_per + lj)];
            dev.launch_kernel(dev.default_stream(), cost,
                              [ta, tb, tc, bs] { sgemm_block(ta, tb, tc, bs); });
          }
        }
        dev.synchronize();
      }
      comm.barrier();
      rank_seconds[static_cast<std::size_t>(rank)] = clock.now() - t0;

      // Verification: pull C home and reduce the checksum to rank 0.
      double local_sum = 0;
      for (std::size_t t = 0; t < hc.size(); ++t) {
        dev.memcpy_d2h(hc[t].data(), dc[t], bb);
        for (float v : hc[t]) local_sum += v;
      }
      double global_sum = 0;
      comm.reduce_sum(&local_sum, &global_sum, 1, 0);
      if (rank == 0) checksum = global_sum;

      for (std::size_t t = 0; t < hc.size(); ++t) dev.free(dc[t]);
      for (auto* ptr : dpanel_a) dev.free(ptr);
      for (auto* ptr : dpanel_b) dev.free(ptr);
    });
  }
  hold.reset();
  for (auto& t : rank_threads) t.join();

  r.seconds = *std::max_element(rank_seconds.begin(), rank_seconds.end());
  r.gflops = p.total_flops() / r.seconds / 1e9;
  r.checksum = checksum;
  return r;
}

}  // namespace apps::matmul
