#include "vt/sync.hpp"

#include <cassert>
#include <stdexcept>

namespace vt {

Monitor::~Monitor() {
  std::lock_guard<std::mutex> lk(clock_.mu_);
  assert(waiters_.empty() && "vt::Monitor destroyed with blocked waiters");
}

void Monitor::wait(std::unique_lock<std::mutex>& lk) { do_wait(lk, false, 0.0); }

bool Monitor::wait_until(std::unique_lock<std::mutex>& lk, double deadline) {
  return do_wait(lk, true, deadline);
}

bool Monitor::do_wait(std::unique_lock<std::mutex>& lk, bool timed, double deadline) {
  if (!lk.owns_lock()) throw std::logic_error("vt::Monitor: wait without holding the lock");
  Clock* cur = Clock::current();
  if (cur != nullptr && cur != &clock_)
    throw std::logic_error("vt::Monitor: wait from a thread attached to a different clock");

  detail::ThreadRec* rec = Clock::current_rec();
  detail::ThreadRec local("<unattached>");
  const bool attached = (cur == &clock_) && rec != nullptr && rec->attached;
  if (!attached) rec = &local;

  bool timed_out = false;
  {
    std::unique_lock<std::mutex> clk(clock_.mu_);
    if (clock_.cancelled_) throw Cancelled{};
    if (timed && deadline <= clock_.now_) return false;
    rec->woken = false;
    rec->timed_out = false;
    rec->cancelled = false;
    rec->waiting_on = this;
    waiters_.push_back(rec);
    if (!attached) clock_.all_.insert(rec);
    if (timed) clock_.add_timed_locked(rec, deadline);
    if (attached) clock_.block_running_locked();
    lk.unlock();
    try {
      clock_.wait_until_woken(clk, rec);
      clock_.resume_running_locked(rec);
    } catch (...) {
      if (!attached) clock_.all_.erase(rec);
      clk.unlock();
      lk.lock();
      throw;
    }
    timed_out = rec->timed_out;
    if (!attached) clock_.all_.erase(rec);
  }
  lk.lock();
  return !timed_out;
}

void Monitor::notify_one() {
  std::lock_guard<std::mutex> lk(clock_.mu_);
  if (!waiters_.empty()) clock_.wake_locked(waiters_.front(), /*timed_out=*/false);
}

void Monitor::notify_all() {
  std::lock_guard<std::mutex> lk(clock_.mu_);
  while (!waiters_.empty()) clock_.wake_locked(waiters_.front(), /*timed_out=*/false);
}

void Flag::set() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    set_ = true;
  }
  mon_.notify_all();
}

void Flag::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  set_ = false;
}

bool Flag::is_set() const {
  std::lock_guard<std::mutex> lk(mu_);
  return set_;
}

void Flag::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  mon_.wait(lk, [this] { return set_; });
}

bool Flag::wait_for(double timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  return mon_.wait_for(lk, timeout, [this] { return set_; });
}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  size_t gen = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    mon_.notify_all();
    return;
  }
  mon_.wait(lk, [this, gen] { return generation_ != gen; });
}

void CountLatch::add(size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  count_ += n;
}

void CountLatch::done(size_t n) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (count_ < n) throw std::logic_error("vt::CountLatch: done() below zero");
    count_ -= n;
    if (count_ != 0) return;
  }
  mon_.notify_all();
}

size_t CountLatch::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

void CountLatch::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  mon_.wait(lk, [this] { return count_ == 0; });
}

}  // namespace vt
