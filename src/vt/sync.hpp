// Blocking primitives that cooperate with the virtual clock.
//
// Monitor is the condition-variable analogue: every blocking wait in the
// simulated platform and in the Nanos++ runtime reimplementation goes through
// it (directly or via Flag/Barrier/Channel), so the clock always knows
// whether a thread is runnable.  Plain std::mutex is still used for short
// critical sections — a mutex holder is RUNNING, so those never interact with
// virtual time.
#pragma once

#include <mutex>
#include <vector>

#include "vt/clock.hpp"

namespace vt {

class Monitor {
public:
  explicit Monitor(Clock& clock) : clock_(clock) {}
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Blocks until notified.  `lk` (the caller's own mutex) is released while
  /// blocked and re-acquired before returning.  Works from attached threads
  /// (participating in virtual time) and unattached ones (outside it).
  void wait(std::unique_lock<std::mutex>& lk);

  /// Blocks until notified or until virtual time `deadline`.
  /// Returns false if the deadline fired first.
  bool wait_until(std::unique_lock<std::mutex>& lk, double deadline);

  /// Blocks until notified or for `timeout` virtual seconds.
  bool wait_for(std::unique_lock<std::mutex>& lk, double timeout) {
    return wait_until(lk, clock_.now() + timeout);
  }

  template <typename Pred>
  void wait(std::unique_lock<std::mutex>& lk, Pred pred) {
    while (!pred()) wait(lk);
  }

  /// Predicate form with deadline; returns the final predicate value.
  template <typename Pred>
  bool wait_until(std::unique_lock<std::mutex>& lk, double deadline, Pred pred) {
    while (!pred()) {
      if (!wait_until(lk, deadline)) return pred();
    }
    return true;
  }

  template <typename Pred>
  bool wait_for(std::unique_lock<std::mutex>& lk, double timeout, Pred pred) {
    return wait_until(lk, clock_.now() + timeout, std::move(pred));
  }

  void notify_one();
  void notify_all();

  Clock& clock() { return clock_; }

private:
  friend class Clock;

  bool do_wait(std::unique_lock<std::mutex>& lk, bool timed, double deadline);

  Clock& clock_;
  std::vector<detail::ThreadRec*> waiters_;  // guarded by clock_.mu_
};

/// One-shot (resettable) boolean flag.
class Flag {
public:
  explicit Flag(Clock& clock) : mon_(clock) {}

  void set();
  void reset();
  bool is_set() const;
  void wait();
  /// Returns false on virtual-time timeout.
  bool wait_for(double timeout);

private:
  mutable std::mutex mu_;
  Monitor mon_;
  bool set_ = false;
};

/// Reusable rendezvous for a fixed number of participants.
class Barrier {
public:
  Barrier(Clock& clock, size_t parties) : mon_(clock), parties_(parties) {}

  /// Blocks until `parties` threads have arrived, then releases them all.
  void arrive_and_wait();

private:
  std::mutex mu_;
  Monitor mon_;
  size_t parties_;
  size_t arrived_ = 0;
  size_t generation_ = 0;
};

/// Counts outstanding work items; wait() blocks until the count is zero.
class CountLatch {
public:
  explicit CountLatch(Clock& clock) : mon_(clock) {}

  void add(size_t n = 1);
  void done(size_t n = 1);
  size_t pending() const;
  void wait();

private:
  mutable std::mutex mu_;
  Monitor mon_;
  size_t count_ = 0;
};

}  // namespace vt
