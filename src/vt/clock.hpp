// Virtual-time coordination layer.
//
// Every thread that participates in a simulation attaches to a Clock.  A
// thread is either RUNNING (executing code) or blocked in one of the vt
// primitives (sleep_for/sleep_until, Monitor::wait, …).  Virtual time only
// advances when *no* attached thread is running and no wakeup is in flight:
// the clock then jumps to the earliest pending timed wakeup.  CPU work
// between vt calls is free in virtual time; all modelled costs (kernel
// durations, PCIe and network transfer times) are expressed as explicit
// sleeps by the simulated platform layers.
//
// This gives deterministic, noise-free timing on any host — including the
// single-core machines this reproduction targets — while the runtime under
// test remains a genuinely multi-threaded program.
//
// Deadlock: if every attached thread is blocked on an event (no timed wakeup
// pending anywhere), the simulation cannot progress.  The clock detects this,
// produces a report naming each thread and what it waits on, and invokes the
// deadlock handler (default: print and abort).  If the handler returns, all
// blocked vt waits throw vt::Cancelled so the process can unwind cleanly —
// tests rely on this to assert on deadlock detection.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace vt {

class Clock;
class Monitor;

/// Thrown out of blocking vt calls after deadlock cancellation (or an
/// explicit Clock::cancel_all()).
struct Cancelled {};

namespace detail {

struct ThreadRec {
  explicit ThreadRec(std::string n) : name(std::move(n)) {}

  std::string name;
  std::condition_variable cv;  // waits on Clock::mu_
  bool attached = false;       // counted in running_/attached_
  bool service = false;        // expected to idle; exempt from deadlock detection
  bool woken = false;
  bool timed_out = false;
  bool cancelled = false;
  double wake_time = 0.0;
  Monitor* waiting_on = nullptr;  // non-null while in a Monitor's waiter list
  bool in_timed_set = false;
};

}  // namespace detail

class Clock {
public:
  Clock() = default;
  ~Clock();

  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  /// Current virtual time in seconds.
  double now() const;

  /// Blocks the calling (attached) thread for `sec` of virtual time.
  void sleep_for(double sec);
  /// Blocks the calling (attached) thread until virtual time `t`.
  void sleep_until(double t);

  /// Registers the calling thread as a simulation participant.
  void attach(const std::string& name);
  /// Deregisters the calling thread (must be attached).
  void detach();

  /// The Clock the calling thread is attached to, or nullptr.
  static Clock* current();

  size_t attached_count() const;

  /// Invoked (with internal lock held) when a deadlock is detected.  If it
  /// returns, all blocked waits are cancelled.  Default prints and aborts.
  using DeadlockHandler = std::function<void(const std::string& report)>;
  void set_deadlock_handler(DeadlockHandler h);

  /// Wakes every blocked vt wait with vt::Cancelled and poisons the clock:
  /// any *future* blocking wait also throws.  Used for unwinding after a
  /// detected deadlock (and by tests); a cancelled simulation cannot resume.
  void cancel_all();

  /// Choice-point hook for schedule exploration (simcheck).  While a gate is
  /// registered, the clock consults it at every quiescence point — the moment
  /// no attached thread is running and no wakeup is in flight, i.e. exactly
  /// when virtual time would otherwise advance.  If `*pending > 0` and a
  /// thread is blocked on `gate`, the clock wakes that thread *instead of*
  /// advancing time, handing the schedule explorer a globally quiescent
  /// system in which to make its next delivery choice.  `pending` must be
  /// readable without taking any lock (the clock calls it with its internal
  /// mutex held).  Pass (nullptr, nullptr) to deregister; the gate and the
  /// counter must outlive the registration.
  void set_choice_gate(Monitor* gate, const std::atomic<long long>* pending);

private:
  friend class Hold;
  friend class Monitor;
  friend class Thread;

  // Pre-attachment: Thread registers the child with the clock *before* the
  // OS thread starts, so virtual time cannot race ahead of thread startup.
  detail::ThreadRec* pre_attach(const std::string& name, bool service);
  void adopt(detail::ThreadRec* rec);        // called on the child thread
  void abandon(detail::ThreadRec* rec);      // if the OS thread never started

  /// The calling thread's record, or nullptr when unattached.
  static detail::ThreadRec* current_rec();

  // All below require mu_ held.
  void sleep_until_locked(std::unique_lock<std::mutex>& lk, double t);
  void block_running_locked();               // running_--, maybe advance
  void resume_running_locked(detail::ThreadRec* rec);
  void add_timed_locked(detail::ThreadRec* rec, double t);
  void remove_timed_locked(detail::ThreadRec* rec);
  void wake_locked(detail::ThreadRec* rec, bool timed_out);
  void maybe_advance_locked();
  void cancel_all_locked();
  std::string deadlock_report_locked() const;
  void wait_until_woken(std::unique_lock<std::mutex>& lk, detail::ThreadRec* rec);

  mutable std::mutex mu_;
  double now_ = 0.0;
  size_t attached_ = 0;
  size_t running_ = 0;
  size_t pending_wakeups_ = 0;
  std::multiset<std::pair<double, detail::ThreadRec*>> timed_;
  std::set<detail::ThreadRec*> all_;  // every live rec, for diagnostics/cancel
  DeadlockHandler deadlock_handler_;
  bool cancelled_ = false;  // sticky: set by cancel_all
  Monitor* choice_gate_ = nullptr;
  const std::atomic<long long>* choice_pending_ = nullptr;
};

/// RAII inhibitor: while a Hold exists, virtual time cannot advance and
/// deadlock detection is suppressed.  An *unattached* orchestrator (a test
/// main, a benchmark driver, a runtime constructor) must hold one while it
/// constructs threads or enqueues work, otherwise the clock may legitimately
/// advance — or declare a deadlock — in the window between two thread
/// constructions.  Release the Hold before blocking on simulation results.
class Hold {
public:
  explicit Hold(Clock& clock);
  ~Hold();

  Hold(const Hold&) = delete;
  Hold& operator=(const Hold&) = delete;

private:
  Clock& clock_;
};

/// RAII attachment for a thread that already exists (e.g. a test's main
/// thread).
class AttachGuard {
public:
  AttachGuard(Clock& clock, const std::string& name) : clock_(clock) { clock_.attach(name); }
  ~AttachGuard() { clock_.detach(); }

  AttachGuard(const AttachGuard&) = delete;
  AttachGuard& operator=(const AttachGuard&) = delete;

private:
  Clock& clock_;
};

/// std::thread wrapper whose body participates in the clock.  The thread is
/// accounted as RUNNING from construction, so there is no startup window in
/// which virtual time can advance past it.  vt::Cancelled escaping the body
/// terminates the thread quietly (used for deadlock-cancellation unwinding).
class Thread {
public:
  Thread();
  /// `service`: marks a thread that is *expected* to block indefinitely on a
  /// work queue (engines, workers, pollers).  When every blocked thread is a
  /// service thread the clock treats the system as idle rather than
  /// deadlocked; deadlock is only declared while a non-service thread (a
  /// task, a driver, a joiner) is stuck too.
  Thread(Clock& clock, const std::string& name, std::function<void()> body,
         bool service = false);
  ~Thread();

  Thread(Thread&&) noexcept;
  Thread& operator=(Thread&&) noexcept;

  bool joinable() const;
  /// Safe to call from an attached thread: the underlying OS join happens
  /// only after the target has detached from the clock.
  void join();

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vt
