#include "vt/clock.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/log.hpp"
#include "vt/sync.hpp"

namespace vt {

namespace {
thread_local Clock* t_clock = nullptr;
thread_local detail::ThreadRec* t_rec = nullptr;
}  // namespace

Clock::~Clock() {
  std::lock_guard<std::mutex> lk(mu_);
  if (attached_ != 0) {
    LOG_ERROR("vt::Clock destroyed with ", attached_, " thread(s) still attached");
  }
  for (detail::ThreadRec* rec : all_) delete rec;
}

double Clock::now() const {
  std::lock_guard<std::mutex> lk(mu_);
  return now_;
}

Clock* Clock::current() { return t_clock; }

detail::ThreadRec* Clock::current_rec() { return t_rec; }

size_t Clock::attached_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return attached_;
}

void Clock::set_deadlock_handler(DeadlockHandler h) {
  std::lock_guard<std::mutex> lk(mu_);
  deadlock_handler_ = std::move(h);
}

void Clock::attach(const std::string& name) {
  if (t_clock != nullptr) throw std::logic_error("vt: thread already attached to a clock");
  auto* rec = new detail::ThreadRec(name);
  rec->attached = true;
  {
    std::lock_guard<std::mutex> lk(mu_);
    all_.insert(rec);
    ++attached_;
    ++running_;
  }
  t_clock = this;
  t_rec = rec;
}

void Clock::detach() {
  if (t_clock != this || t_rec == nullptr)
    throw std::logic_error("vt: detach() from a thread not attached to this clock");
  detail::ThreadRec* rec = t_rec;
  t_clock = nullptr;
  t_rec = nullptr;
  std::lock_guard<std::mutex> lk(mu_);
  all_.erase(rec);
  delete rec;
  --attached_;
  --running_;
  maybe_advance_locked();
}

detail::ThreadRec* Clock::pre_attach(const std::string& name, bool service) {
  auto* rec = new detail::ThreadRec(name);
  rec->attached = true;
  rec->service = service;
  std::lock_guard<std::mutex> lk(mu_);
  all_.insert(rec);
  ++attached_;
  ++running_;
  return rec;
}

void Clock::adopt(detail::ThreadRec* rec) {
  if (t_clock != nullptr) throw std::logic_error("vt: thread already attached to a clock");
  t_clock = this;
  t_rec = rec;
}

void Clock::abandon(detail::ThreadRec* rec) {
  std::lock_guard<std::mutex> lk(mu_);
  all_.erase(rec);
  delete rec;
  --attached_;
  --running_;
  maybe_advance_locked();
}

void Clock::sleep_for(double sec) {
  if (sec < 0) throw std::invalid_argument("vt: negative sleep duration");
  std::unique_lock<std::mutex> lk(mu_);
  sleep_until_locked(lk, now_ + sec);
}

void Clock::sleep_until(double t) {
  std::unique_lock<std::mutex> lk(mu_);
  sleep_until_locked(lk, t);
}

void Clock::sleep_until_locked(std::unique_lock<std::mutex>& lk, double t) {
  if (t_clock != this || t_rec == nullptr || !t_rec->attached)
    throw std::logic_error("vt: sleep from a thread not attached to this clock");
  if (cancelled_) throw Cancelled{};
  if (t <= now_) return;
  detail::ThreadRec* rec = t_rec;
  rec->woken = false;
  rec->timed_out = false;
  add_timed_locked(rec, t);
  block_running_locked();
  wait_until_woken(lk, rec);
  resume_running_locked(rec);
}

void Clock::block_running_locked() {
  --running_;
  maybe_advance_locked();
}

void Clock::resume_running_locked(detail::ThreadRec* rec) {
  assert(pending_wakeups_ > 0);
  --pending_wakeups_;
  if (rec->attached) {
    ++running_;
  } else {
    // An unattached thread resuming does not count towards running_, so the
    // system may be quiescent again right now — re-check advancement.
    maybe_advance_locked();
  }
}

void Clock::add_timed_locked(detail::ThreadRec* rec, double t) {
  rec->wake_time = t;
  rec->in_timed_set = true;
  timed_.emplace(t, rec);
}

void Clock::remove_timed_locked(detail::ThreadRec* rec) {
  if (!rec->in_timed_set) return;
  auto range = timed_.equal_range({rec->wake_time, rec});
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == rec) {
      timed_.erase(it);
      break;
    }
  }
  rec->in_timed_set = false;
}

void Clock::wake_locked(detail::ThreadRec* rec, bool timed_out) {
  if (rec->woken) return;
  if (rec->waiting_on != nullptr) {
    auto& ws = rec->waiting_on->waiters_;
    ws.erase(std::remove(ws.begin(), ws.end(), rec), ws.end());
    rec->waiting_on = nullptr;
  }
  remove_timed_locked(rec);
  rec->woken = true;
  rec->timed_out = timed_out;
  ++pending_wakeups_;
  rec->cv.notify_one();
}

void Clock::wait_until_woken(std::unique_lock<std::mutex>& lk, detail::ThreadRec* rec) {
  rec->cv.wait(lk, [rec] { return rec->woken; });
  if (rec->cancelled) {
    resume_running_locked(rec);
    rec->cancelled = false;
    throw Cancelled{};
  }
}

void Clock::set_choice_gate(Monitor* gate, const std::atomic<long long>* pending) {
  std::lock_guard<std::mutex> lk(mu_);
  choice_gate_ = gate;
  choice_pending_ = pending;
}

void Clock::maybe_advance_locked() {
  if (running_ > 0 || pending_wakeups_ > 0) return;
  // Schedule exploration: at quiescence, deliveries held by an arbiter take
  // priority over advancing virtual time.  Waking the gate (rather than the
  // earliest timed sleeper) keeps every held message deliverable "now", so
  // the explorer chooses among them at a single well-defined instant.
  if (choice_gate_ != nullptr && choice_pending_ != nullptr &&
      choice_pending_->load(std::memory_order_acquire) > 0 &&
      !choice_gate_->waiters_.empty()) {
    wake_locked(choice_gate_->waiters_.front(), /*timed_out=*/false);
    return;
  }
  if (timed_.empty()) {
    if (attached_ == 0) return;
    // If every blocked thread is a service thread the system is merely idle
    // (work queues are empty); only a stuck non-service thread is a deadlock.
    bool nonservice_blocked = false;
    for (const detail::ThreadRec* rec : all_) {
      if (!rec->service && !rec->woken && rec->waiting_on != nullptr) {
        nonservice_blocked = true;
        break;
      }
    }
    if (!nonservice_blocked) return;
    // No thread can make progress and no timed wakeup exists: deadlock.
    std::string report = deadlock_report_locked();
    if (deadlock_handler_) {
      deadlock_handler_(report);
    } else {
      std::fprintf(stderr, "%s", report.c_str());
      std::abort();
    }
    cancel_all_locked();
    return;
  }
  double t = timed_.begin()->first;
  if (t > now_) now_ = t;
  while (!timed_.empty() && timed_.begin()->first <= now_) {
    wake_locked(timed_.begin()->second, /*timed_out=*/true);
  }
}

void Clock::cancel_all() {
  std::lock_guard<std::mutex> lk(mu_);
  cancel_all_locked();
}

void Clock::cancel_all_locked() {
  cancelled_ = true;
  for (detail::ThreadRec* rec : all_) {
    if (!rec->woken && (rec->waiting_on != nullptr || rec->in_timed_set)) {
      rec->cancelled = true;
      wake_locked(rec, /*timed_out=*/false);
    }
  }
}

std::string Clock::deadlock_report_locked() const {
  std::ostringstream os;
  os << "vt: DEADLOCK at virtual time " << now_ << "s — all " << attached_
     << " attached thread(s) are blocked on events:\n";
  for (const detail::ThreadRec* rec : all_) {
    os << "  thread '" << rec->name << "': ";
    if (rec->waiting_on != nullptr)
      os << "waiting on monitor @" << static_cast<const void*>(rec->waiting_on);
    else if (rec->in_timed_set)
      os << "timed wait until " << rec->wake_time;
    else if (rec->woken)
      os << "wakeup in flight";
    else
      os << "running";
    os << '\n';
  }
  return os.str();
}

struct Thread::Impl {
  explicit Impl(Clock& clock) : done(clock) {}
  std::thread os_thread;
  Flag done;
};

Hold::Hold(Clock& clock) : clock_(clock) {
  std::lock_guard<std::mutex> lk(clock_.mu_);
  ++clock_.running_;
}

Hold::~Hold() {
  std::lock_guard<std::mutex> lk(clock_.mu_);
  --clock_.running_;
  clock_.maybe_advance_locked();
}

Thread::Thread() = default;
Thread::Thread(Thread&&) noexcept = default;
Thread& Thread::operator=(Thread&&) noexcept = default;

bool Thread::joinable() const { return impl_ && impl_->os_thread.joinable(); }

Thread::Thread(Clock& clock, const std::string& name, std::function<void()> body, bool service)
    : impl_(std::make_unique<Impl>(clock)) {
  detail::ThreadRec* rec = clock.pre_attach(name, service);
  Impl* impl = impl_.get();
  try {
    impl->os_thread = std::thread([&clock, rec, impl, body = std::move(body)]() mutable {
      clock.adopt(rec);
      common::Log::set_thread_name(rec->name);
      try {
        body();
      } catch (const Cancelled&) {
        LOG_DEBUG("thread cancelled");
      }
      impl->done.set();
      clock.detach();
    });
  } catch (...) {
    clock.abandon(rec);
    throw;
  }
}

Thread::~Thread() {
  if (joinable()) join();
}

void Thread::join() {
  if (!impl_ || !impl_->os_thread.joinable())
    throw std::logic_error("vt::Thread: join on non-joinable thread");
  // Wait via the clock first so an attached joiner does not stall virtual
  // time while the target still needs it to advance.  A deadlock
  // cancellation may interrupt this wait; the target thread is unwinding at
  // that point and will still set its done flag, so simply wait again.
  for (;;) {
    try {
      impl_->done.wait();
      break;
    } catch (const Cancelled&) {
      // The clock is poisoned; the target is unwinding and will set the flag
      // without blocking.  Yield so it gets CPU time on small hosts.
      std::this_thread::yield();
      continue;
    }
  }
  impl_->os_thread.join();
}

}  // namespace vt
