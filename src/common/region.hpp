// Address-range regions used by the dependency and coherence layers.
//
// A Region is a half-open byte range [start, start+size).  The paper's
// dependence clauses name whole arrays/scalars; partial overlap of clause
// regions is explicitly unsupported by the paper's implementation, so any
// overlap is treated as a full dependence (conservative, matching §II-A3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace common {

struct Region {
  std::uintptr_t start = 0;
  std::size_t size = 0;

  Region() = default;
  Region(std::uintptr_t s, std::size_t n) : start(s), size(n) {}
  Region(const void* p, std::size_t n) : start(reinterpret_cast<std::uintptr_t>(p)), size(n) {}

  std::uintptr_t end() const { return start + size; }
  bool empty() const { return size == 0; }
  void* ptr() const { return reinterpret_cast<void*>(start); }

  bool overlaps(const Region& o) const {
    return !empty() && !o.empty() && start < o.end() && o.start < end();
  }
  bool contains(const Region& o) const {
    return o.empty() || (start <= o.start && o.end() <= end());
  }

  friend bool operator==(const Region& a, const Region& b) {
    return a.start == b.start && a.size == b.size;
  }
  friend bool operator<(const Region& a, const Region& b) {
    return a.start != b.start ? a.start < b.start : a.size < b.size;
  }

  std::string to_string() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[0x%zx,+%zu)", static_cast<size_t>(start), size);
    return buf;
  }
};

struct RegionHash {
  std::size_t operator()(const Region& r) const {
    return std::hash<std::uintptr_t>()(r.start) * 31 ^ std::hash<std::size_t>()(r.size);
  }
};

}  // namespace common
