// Runtime statistics: named thread-safe counters and value accumulators.
//
// The coherence, cluster and GPU layers record transfer counts/bytes here;
// tests assert on them (e.g. "write-back produced fewer transfers than
// no-cache") and the benchmark harness prints them next to the performance
// series, mirroring the discussion in the paper's §IV-B.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace common {

/// Snapshot of one accumulator.
struct StatValue {
  std::uint64_t count = 0;  ///< number of add() calls
  double sum = 0.0;         ///< sum of added values
  double min = 0.0;
  double max = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// A named collection of accumulators.  One instance is owned per Runtime so
/// that concurrent simulations (e.g. several nodes) do not share state.
class Stats {
public:
  /// Adds `value` to the accumulator called `name`, creating it on first use.
  void add(const std::string& name, double value);
  /// Shorthand for counting events: add(name, 1).
  void incr(const std::string& name) { add(name, 1.0); }

  StatValue get(const std::string& name) const;
  double sum(const std::string& name) const { return get(name).sum; }
  std::uint64_t count(const std::string& name) const { return get(name).count; }

  std::map<std::string, StatValue> snapshot() const;
  void clear();

  /// Renders "name: count=… sum=…" lines, sorted by name.
  std::string to_string() const;

private:
  mutable std::mutex mu_;
  std::map<std::string, StatValue> values_;
};

}  // namespace common
