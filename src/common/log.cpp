#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace common {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("OMPSS_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  std::string s(env);
  if (s == "error") return LogLevel::kError;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "info") return LogLevel::kInfo;
  if (s == "debug") return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

thread_local std::string t_thread_name;

const char* tag(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?????";
}

}  // namespace

std::atomic<LogLevel> Log::level_{initial_level()};

void Log::set_thread_name(const std::string& name) { t_thread_name = name; }

std::string Log::thread_name() {
  if (!t_thread_name.empty()) return t_thread_name;
  std::ostringstream os;
  os << "t" << std::this_thread::get_id();
  return os.str();
}

void Log::write(LogLevel l, const std::string& msg) {
  std::lock_guard<std::mutex> lk(log_mutex());
  std::fprintf(stderr, "[%s][%s] %s\n", tag(l), thread_name().c_str(), msg.c_str());
}

}  // namespace common
