#include "common/stats.hpp"

#include <sstream>

namespace common {

void Stats::add(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = values_.try_emplace(name);
  StatValue& v = it->second;
  if (inserted) {
    v.min = v.max = value;
  } else {
    if (value < v.min) v.min = value;
    if (value > v.max) v.max = value;
  }
  v.count += 1;
  v.sum += value;
}

StatValue Stats::get(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = values_.find(name);
  return it == values_.end() ? StatValue{} : it->second;
}

std::map<std::string, StatValue> Stats::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return values_;
}

void Stats::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  values_.clear();
}

std::string Stats::to_string() const {
  std::ostringstream os;
  for (const auto& [name, v] : snapshot()) {
    os << name << ": count=" << v.count << " sum=" << v.sum;
    if (v.count > 1) os << " mean=" << v.mean() << " min=" << v.min << " max=" << v.max;
    os << '\n';
  }
  return os.str();
}

}  // namespace common
