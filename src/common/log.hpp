// Minimal thread-safe leveled logger.
//
// The level is read once from the OMPSS_LOG environment variable
// (error|warn|info|debug) and can be overridden programmatically.  Debug
// logging is cheap to leave in hot paths: the level check is a relaxed
// atomic load and message formatting only happens when enabled.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace common {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Log {
public:
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void set_level(LogLevel l) { level_.store(l, std::memory_order_relaxed); }
  static bool enabled(LogLevel l) { return static_cast<int>(l) <= static_cast<int>(level()); }

  /// Writes one line (with level tag and thread name) to stderr under a lock.
  static void write(LogLevel l, const std::string& msg);

  /// Name of the calling thread as shown in log lines; defaults to "t<tid>".
  static void set_thread_name(const std::string& name);
  static std::string thread_name();

private:
  static std::atomic<LogLevel> level_;
};

namespace detail {
template <typename... Args>
std::string format_parts(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

}  // namespace common

#define OMPSS_LOG_AT(lvl, ...)                                                  \
  do {                                                                          \
    if (::common::Log::enabled(lvl))                                            \
      ::common::Log::write(lvl, ::common::detail::format_parts(__VA_ARGS__));   \
  } while (0)

#define LOG_ERROR(...) OMPSS_LOG_AT(::common::LogLevel::kError, __VA_ARGS__)
#define LOG_WARN(...) OMPSS_LOG_AT(::common::LogLevel::kWarn, __VA_ARGS__)
#define LOG_INFO(...) OMPSS_LOG_AT(::common::LogLevel::kInfo, __VA_ARGS__)
#define LOG_DEBUG(...) OMPSS_LOG_AT(::common::LogLevel::kDebug, __VA_ARGS__)
