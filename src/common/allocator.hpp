// First-fit offset allocator with coalescing.
//
// Manages an abstract [0, capacity) byte range: simcuda uses it over each
// device's memory slab; the cluster layer uses it on the master to carve
// staging space out of each remote node's data segment (the way Nanos++
// manages GASNet segments).  Not thread-safe; callers hold their own lock.
#pragma once

#include <cstddef>
#include <map>
#include <optional>

namespace common {

class FirstFitAllocator {
public:
  static constexpr std::size_t kDefaultAlignment = 256;

  explicit FirstFitAllocator(std::size_t capacity, std::size_t alignment = kDefaultAlignment);

  /// Returns the offset of a block of at least `bytes`, or nullopt when no
  /// sufficiently large free block exists.
  std::optional<std::size_t> allocate(std::size_t bytes);
  /// Frees a block previously returned by allocate(); throws on bad offsets.
  void deallocate(std::size_t offset);

  std::size_t capacity() const { return capacity_; }
  std::size_t free_bytes() const;
  std::size_t largest_free_block() const;
  std::size_t allocated_blocks() const { return allocated_.size(); }

private:
  std::size_t align_up(std::size_t n) const { return (n + alignment_ - 1) & ~(alignment_ - 1); }

  std::size_t capacity_;
  std::size_t alignment_;
  std::map<std::size_t, std::size_t> free_list_;   // offset -> size
  std::map<std::size_t, std::size_t> allocated_;   // offset -> size
};

}  // namespace common
