#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

extern char** environ;

namespace common {
namespace {

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

void Config::parse_args(const std::string& args) {
  std::stringstream ss(args);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw ConfigError("malformed config entry (missing '='): '" + item + "'");
    std::string key = trim(item.substr(0, eq));
    std::string value = trim(item.substr(eq + 1));
    if (key.empty()) throw ConfigError("malformed config entry (empty key): '" + item + "'");
    values_[key] = value;
  }
}

void Config::parse_env(const std::string& prefix) {
  for (char** env = environ; *env != nullptr; ++env) {
    std::string entry(*env);
    size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    std::string name = entry.substr(0, eq);
    if (name.rfind(prefix, 0) != 0) continue;
    std::string key = lower(name.substr(prefix.size()));
    if (key.empty()) continue;
    values_[key] = entry.substr(eq + 1);
  }
}

void Config::set_double(const std::string& key, double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  values_[key] = os.str();
}

std::optional<std::string> Config::raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, const std::string& def) const {
  return raw(key).value_or(def);
}

long long Config::get_int(const std::string& key, long long def) const {
  auto v = raw(key);
  if (!v) return def;
  try {
    size_t pos = 0;
    long long r = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing");
    return r;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "' is not an integer: '" + *v + "'");
  }
}

size_t Config::get_size(const std::string& key, size_t def) const {
  long long v = get_int(key, static_cast<long long>(def));
  if (v < 0) throw ConfigError("config key '" + key + "' must be non-negative");
  return static_cast<size_t>(v);
}

double Config::get_double(const std::string& key, double def) const {
  auto v = raw(key);
  if (!v) return def;
  try {
    size_t pos = 0;
    double r = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing");
    return r;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "' is not a number: '" + *v + "'");
  }
}

bool Config::get_bool(const std::string& key, bool def) const {
  auto v = raw(key);
  if (!v) return def;
  std::string s = lower(*v);
  if (s == "true" || s == "yes" || s == "on" || s == "1") return true;
  if (s == "false" || s == "no" || s == "off" || s == "0") return false;
  throw ConfigError("config key '" + key + "' is not a boolean: '" + *v + "'");
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    if (!out.empty()) out += ',';
    out += k + '=' + v;
  }
  return out;
}

}  // namespace common
