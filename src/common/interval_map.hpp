// Interval index over address-range Regions, shared by the runtime's
// metadata directories (dependency records, coherence directory, cluster
// node directory).
//
// Entries are keyed by region start in a std::map and carry a *prefix
// max-end* augmentation: each entry stores the maximum region end() over
// itself and every entry with a smaller start.  An overlap query walks
// backwards from lower_bound(r.end()) and stops at the first entry whose
// prefix max-end is <= r.start — no entry at or before it can reach into r.
// For the tiled, non-straddling regions the OmpSs clauses produce this makes
// overlap lookups O(log n + k) instead of O(n) (the previous directories
// walked every earlier record), which is what keeps per-task runtime
// overhead flat as the task graph grows (see bench/over01_taskbench).
//
// The prefix maxima form a non-decreasing sequence, so insertions propagate
// forward only while the stored maximum is below the new end — O(1) amortized
// for the append-mostly insertion order of a growing directory.  Entries are
// node-stable: pointers and iterators to entries survive unrelated inserts
// and erases, which the dependency layer relies on for its per-task
// back-references.
//
// Not thread-safe; callers provide their own locking.
#pragma once

#include <cstdint>
#include <map>

#include "common/region.hpp"

namespace common {

template <typename T>
class IntervalMap {
public:
  struct Entry {
    Region region;
    T value{};

  private:
    std::uintptr_t max_end_ = 0;  // max end() over this and all earlier entries
    friend class IntervalMap;
  };

private:
  using Map = std::map<std::uintptr_t, Entry>;

public:
  using iterator = typename Map::iterator;
  using const_iterator = typename Map::const_iterator;

  bool empty() const { return map_.empty(); }
  std::size_t size() const { return map_.size(); }
  iterator begin() { return map_.begin(); }
  iterator end() { return map_.end(); }
  const_iterator begin() const { return map_.begin(); }
  const_iterator end() const { return map_.end(); }

  /// Inserts an entry for `r` unless one keyed by r.start exists.  The
  /// existing entry's region is left untouched on a hit — callers decide how
  /// to reconcile a size mismatch (grow via update_extent, or reject).
  std::pair<iterator, bool> try_emplace(const Region& r) {
    auto [it, inserted] = map_.try_emplace(r.start);
    if (inserted) {
      it->second.region = r;
      std::uintptr_t m = r.end();
      if (it != map_.begin()) m = std::max(m, std::prev(it)->second.max_end_);
      it->second.max_end_ = m;
      propagate_from(std::next(it), r.end());
    }
    return {it, inserted};
  }

  iterator find(std::uintptr_t start) { return map_.find(start); }
  const_iterator find(std::uintptr_t start) const { return map_.find(start); }

  /// Grows `it`'s region to cover at least `size` bytes and repairs the
  /// augmentation.  Shrinking is not supported (the stored maxima would only
  /// become conservative, but no caller needs it).
  void update_extent(iterator it, std::size_t size) {
    if (size <= it->second.region.size) return;
    it->second.region.size = size;
    const std::uintptr_t e = it->second.region.end();
    if (it->second.max_end_ < e) it->second.max_end_ = e;
    propagate_from(std::next(it), e);
  }

  /// Removes an entry and recomputes the prefix maxima of its successors
  /// (walks forward only until the stored values are exact again).
  void erase(iterator it) {
    auto next = map_.erase(it);
    std::uintptr_t m = next != map_.begin() ? std::prev(next)->second.max_end_ : 0;
    for (auto j = next; j != map_.end(); ++j) {
      const std::uintptr_t v = std::max(m, j->second.region.end());
      if (v == j->second.max_end_) break;  // exact again; later entries unchanged
      j->second.max_end_ = v;
      m = v;
    }
  }

  /// Calls `fn(Entry&)` for every entry whose region overlaps `r`.  Returns
  /// the number of entries *visited* (overlapping or not) — the directories
  /// export this as their records-scanned statistic, so a regression back to
  /// linear scans is visible in benchmark output.  `fn` may mutate the
  /// entry's value but not its region.
  template <typename Fn>
  std::size_t for_overlapping(const Region& r, Fn&& fn) {
    std::size_t visited = 0;
    if (map_.empty() || r.empty()) return visited;
    auto it = map_.lower_bound(r.end());  // first entry starting at/after r.end()
    while (it != map_.begin()) {
      --it;
      if (it->second.max_end_ <= r.start) break;  // nothing here or earlier reaches r
      ++visited;
      if (it->second.region.overlaps(r)) fn(it->second);
    }
    return visited;
  }

private:
  void propagate_from(iterator it, std::uintptr_t e) {
    for (; it != map_.end() && it->second.max_end_ < e; ++it) it->second.max_end_ = e;
  }

  Map map_;
};

}  // namespace common
