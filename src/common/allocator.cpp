#include "common/allocator.hpp"

#include <stdexcept>

namespace common {

FirstFitAllocator::FirstFitAllocator(std::size_t capacity, std::size_t alignment)
    : capacity_(capacity), alignment_(alignment) {
  if (alignment_ == 0 || (alignment_ & (alignment_ - 1)) != 0)
    throw std::invalid_argument("FirstFitAllocator: alignment must be a power of two");
  if (capacity_ > 0) free_list_[0] = capacity_;
}

std::optional<std::size_t> FirstFitAllocator::allocate(std::size_t bytes) {
  if (bytes == 0) return std::nullopt;
  bytes = align_up(bytes);
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second < bytes) continue;
    std::size_t offset = it->first;
    std::size_t block = it->second;
    free_list_.erase(it);
    if (block > bytes) free_list_[offset + bytes] = block - bytes;
    allocated_[offset] = bytes;
    return offset;
  }
  return std::nullopt;
}

void FirstFitAllocator::deallocate(std::size_t offset) {
  auto it = allocated_.find(offset);
  if (it == allocated_.end())
    throw std::invalid_argument("FirstFitAllocator: deallocate of unknown offset");
  std::size_t size = it->second;
  allocated_.erase(it);
  auto next = free_list_.find(offset + size);
  if (next != free_list_.end()) {
    size += next->second;
    free_list_.erase(next);
  }
  auto prev = free_list_.lower_bound(offset);
  if (prev != free_list_.begin()) {
    --prev;
    if (prev->first + prev->second == offset) {
      prev->second += size;
      return;
    }
  }
  free_list_[offset] = size;
}

std::size_t FirstFitAllocator::free_bytes() const {
  std::size_t total = 0;
  for (const auto& [off, size] : free_list_) total += size;
  return total;
}

std::size_t FirstFitAllocator::largest_free_block() const {
  std::size_t best = 0;
  for (const auto& [off, size] : free_list_)
    if (size > best) best = size;
  return best;
}

}  // namespace common
