// Typed key/value configuration used by every subsystem.
//
// A Config is a flat string->string map with typed accessors.  It can be
// populated programmatically, from "k=v,k=v" strings (the way Nanos++ reads
// NX_ARGS) and from environment variables with a given prefix.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

namespace common {

class ConfigError : public std::runtime_error {
public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

class Config {
public:
  Config() = default;

  /// Parse a comma-separated "key=value,key=value" list into this config.
  /// Later assignments override earlier ones.  Whitespace around keys and
  /// values is trimmed.  Throws ConfigError on malformed input.
  void parse_args(const std::string& args);

  /// Import every environment variable that starts with `prefix`; the key is
  /// the lower-cased remainder of the variable name.
  void parse_env(const std::string& prefix);

  void set(const std::string& key, const std::string& value) { values_[key] = value; }
  void set_int(const std::string& key, long long v) { values_[key] = std::to_string(v); }
  void set_bool(const std::string& key, bool v) { values_[key] = v ? "true" : "false"; }
  void set_double(const std::string& key, double v);

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get_string(const std::string& key, const std::string& def) const;
  long long get_int(const std::string& key, long long def) const;
  size_t get_size(const std::string& key, size_t def) const;
  double get_double(const std::string& key, double def) const;
  /// Accepts true/false, yes/no, on/off, 1/0 (case-insensitive).
  bool get_bool(const std::string& key, bool def) const;

  /// Renders the config back to a canonical "k=v,k=v" string (sorted keys).
  std::string to_string() const;

  const std::map<std::string, std::string>& values() const { return values_; }

private:
  std::optional<std::string> raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace common
