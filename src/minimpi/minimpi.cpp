#include "minimpi/minimpi.hpp"

#include <cstring>
#include <stdexcept>

namespace minimpi {

namespace {
constexpr int kCollBase = 0x7fff0000;

bool matches(int want_src, int want_tag, int src, int tag) {
  return (want_src == kAnySource || want_src == src) && (want_tag == kAnyTag || want_tag == tag);
}
}  // namespace

// ---------------------------------------------------------------------------
// Request

void Request::wait() {
  if (!state_) return;  // trivially complete (e.g. zero-byte local op)
  state_->done.wait();
}

bool Request::test() const { return !state_ || state_->done.is_set(); }

// ---------------------------------------------------------------------------
// World

World::World(simnet::Network& net) : net_(net), boxes_(static_cast<std::size_t>(net.node_count())) {}

Comm World::comm(int rank) {
  if (rank < 0 || rank >= size()) throw std::out_of_range("minimpi: bad rank");
  return Comm(*this, rank);
}

void World::post_send(int src, int dst, int tag, const void* buf, std::size_t bytes,
                      std::shared_ptr<Request::State> local_done) {
  PendingSend s;
  s.src = src;
  s.tag = tag;
  s.buf = buf;
  s.bytes = bytes;
  s.keep_local = std::move(local_done);
  if (bytes <= kEagerLimit) {
    if (bytes > 0) {
      s.eager_copy = std::make_shared<std::vector<char>>(
          static_cast<const char*>(buf), static_cast<const char*>(buf) + bytes);
      s.buf = s.eager_copy->data();
    }
    if (s.keep_local) {
      s.keep_local->done.set();  // buffer is reusable right away
      s.keep_local.reset();
    }
  }
  PostedRecv matched;
  bool have_match = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto& box = boxes_[static_cast<std::size_t>(dst)];
    for (auto it = box.recvs.begin(); it != box.recvs.end(); ++it) {
      if (matches(it->src, it->tag, src, tag)) {
        matched = *it;
        box.recvs.erase(it);
        have_match = true;
        break;
      }
    }
    if (!have_match) box.sends.push_back(s);
  }
  if (have_match) start_transfer(dst, s, matched);
}

void World::post_recv(int dst, int src, int tag, void* buf, std::size_t bytes,
                      std::shared_ptr<Request::State> done) {
  PostedRecv r;
  r.src = src;
  r.tag = tag;
  r.buf = buf;
  r.bytes = bytes;
  r.done = std::move(done);
  PendingSend matched;
  bool have_match = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto& box = boxes_[static_cast<std::size_t>(dst)];
    for (auto it = box.sends.begin(); it != box.sends.end(); ++it) {
      if (matches(src, tag, it->src, it->tag)) {
        matched = *it;
        box.sends.erase(it);
        have_match = true;
        break;
      }
    }
    if (!have_match) box.recvs.push_back(std::move(r));
  }
  if (have_match) start_transfer(dst, matched, r);
}

void World::start_transfer(int dst, const PendingSend& s, const PostedRecv& r) {
  if (r.bytes < s.bytes)
    throw std::length_error("minimpi: receive buffer smaller than incoming message");
  auto local = s.keep_local;
  auto remote = r.done;
  auto eager = s.eager_copy;  // keep the eager buffer alive until delivery
  // Zero-byte messages are control-only but still traverse the wire (both
  // completions fire from the network), so barriers cost real latency.
  net_.endpoint(s.src).put(
      dst, r.buf, s.buf, s.bytes,
      /*on_local_complete=*/[local] {
        if (local) local->done.set();
      },
      /*on_remote_complete=*/
      [remote, eager] {
        if (remote) remote->done.set();
      });
}

// ---------------------------------------------------------------------------
// Comm: point to point

Request Comm::isend(int dst, int tag, const void* buf, std::size_t bytes) {
  Request req;
  req.state_ = std::make_shared<Request::State>(world_->network().clock());
  world_->post_send(rank_, dst, tag, buf, bytes, req.state_);
  return req;
}

Request Comm::irecv(int src, int tag, void* buf, std::size_t bytes) {
  Request req;
  req.state_ = std::make_shared<Request::State>(world_->network().clock());
  world_->post_recv(rank_, src, tag, buf, bytes, req.state_);
  return req;
}

void Comm::send(int dst, int tag, const void* buf, std::size_t bytes) {
  isend(dst, tag, buf, bytes).wait();
}

void Comm::recv(int src, int tag, void* buf, std::size_t bytes) {
  irecv(src, tag, buf, bytes).wait();
}

void Comm::sendrecv(int dst, int sendtag, const void* sendbuf, std::size_t sendbytes, int src,
                    int recvtag, void* recvbuf, std::size_t recvbytes) {
  Request rr = irecv(src, recvtag, recvbuf, recvbytes);
  Request sr = isend(dst, sendtag, sendbuf, sendbytes);
  sr.wait();
  rr.wait();
}

// ---------------------------------------------------------------------------
// Comm: collectives

void Comm::barrier() {
  // Linear gather to rank 0, then release.  Tag partitioned per phase.
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) recv(r, kCollBase + 0, nullptr, 0);
    for (int r = 1; r < size(); ++r) send(r, kCollBase + 1, nullptr, 0);
  } else {
    send(0, kCollBase + 0, nullptr, 0);
    recv(0, kCollBase + 1, nullptr, 0);
  }
}

void Comm::bcast(void* buf, std::size_t bytes, int root) {
  if (rank_ == root) {
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      reqs.push_back(isend(r, kCollBase + 2, buf, bytes));
    }
    for (auto& q : reqs) q.wait();
  } else {
    recv(root, kCollBase + 2, buf, bytes);
  }
}

void Comm::allgather(const void* sendbuf, std::size_t bytes, void* recvbuf) {
  // Straightforward implementation (gather to rank 0, then broadcast the
  // assembled buffer) — matching the unoptimized MPI baselines the paper
  // compares against (§IV-A2).  Rank 0's NIC serializes both phases, which
  // is what limits the MPI+CUDA N-Body at scale.
  char* out = static_cast<char*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(rank_) * bytes, sendbuf, bytes);
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r)
      recv(r, kCollBase + 3, out + static_cast<std::size_t>(r) * bytes, bytes);
  } else {
    send(0, kCollBase + 3, sendbuf, bytes);
  }
  bcast(recvbuf, static_cast<std::size_t>(size()) * bytes, /*root=*/0);
}

void Comm::reduce_sum(const double* sendbuf, double* recvbuf, std::size_t count, int root) {
  if (rank_ == root) {
    std::memcpy(recvbuf, sendbuf, count * sizeof(double));
    std::vector<double> tmp(count);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv(r, kCollBase + 4, tmp.data(), count * sizeof(double));
      for (std::size_t i = 0; i < count; ++i) recvbuf[i] += tmp[i];
    }
  } else {
    send(root, kCollBase + 4, sendbuf, count * sizeof(double));
  }
}

}  // namespace minimpi
