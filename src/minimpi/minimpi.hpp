// minimpi — a small MPI-like message-passing library on top of simnet.
//
// The paper's baselines are MPI+CUDA programs.  To compare them against the
// OmpSs runtime on equal footing, both must run over the same network model,
// so minimpi implements the MPI subset those baselines need — blocking and
// nonblocking point-to-point with tag matching, and the collectives the four
// applications use — directly on simnet active messages and puts.
//
// Ranks are vt threads inside one process.  Large payloads move as simnet
// puts (rendezvous: the transfer starts once the matching receive is posted),
// so NIC occupancy and contention are modelled identically for minimpi and
// for the Nanos++ cluster layer.
//
// Collectives are deliberately simple (linear), matching the paper's
// description of its MPI baseline as a straightforward implementation.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "simnet/simnet.hpp"
#include "vt/sync.hpp"

namespace minimpi {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

/// Completion handle for nonblocking operations.
class Request {
public:
  Request() = default;

  void wait();
  bool test() const;

private:
  friend class World;
  friend class Comm;
  struct State {
    explicit State(vt::Clock& c) : done(c) {}
    vt::Flag done;
  };
  std::shared_ptr<State> state_;
};

class Comm;

/// Shared matching state for all ranks.  Create one World per simulated MPI
/// job; obtain per-rank Comm handles with comm(rank).
class World {
public:
  /// Messages up to this size use the eager protocol (copied at post time).
  static constexpr std::size_t kEagerLimit = 64u << 10;

  explicit World(simnet::Network& net);

  int size() const { return static_cast<int>(net_.node_count()); }
  Comm comm(int rank);
  simnet::Network& network() { return net_; }

private:
  friend class Comm;

  struct PendingSend {
    int src = 0;
    int tag = 0;
    const void* buf = nullptr;
    std::size_t bytes = 0;
    std::shared_ptr<Request::State> keep_local;
    /// Small messages are sent eagerly: the payload is copied here at post
    /// time and the sender completes immediately (real MPI's eager protocol;
    /// without it, a blocking send of a small message could deadlock where
    /// MPI programs legitimately rely on buffering).
    std::shared_ptr<std::vector<char>> eager_copy;
  };
  struct PostedRecv {
    int src = kAnySource;
    int tag = kAnyTag;
    void* buf = nullptr;
    std::size_t bytes = 0;
    std::shared_ptr<Request::State> done;
  };

  // Per destination rank: unmatched sends and posted receives.
  struct Matchbox {
    std::deque<PendingSend> sends;
    std::deque<PostedRecv> recvs;
  };

  void post_send(int src, int dst, int tag, const void* buf, std::size_t bytes,
                 std::shared_ptr<Request::State> local_done);
  void post_recv(int dst, int src, int tag, void* buf, std::size_t bytes,
                 std::shared_ptr<Request::State> done);
  /// Starts the wire transfer for a matched (send, recv) pair.
  void start_transfer(int dst, const PendingSend& s, const PostedRecv& r);

  simnet::Network& net_;
  std::mutex mu_;
  std::vector<Matchbox> boxes_;
};

/// A rank's communicator handle.  Methods must be called from the thread
/// simulating that rank (blocking calls park that thread on the clock).
class Comm {
public:
  int rank() const { return rank_; }
  int size() const { return world_->size(); }

  // -- point to point ------------------------------------------------------
  void send(int dst, int tag, const void* buf, std::size_t bytes);
  void recv(int src, int tag, void* buf, std::size_t bytes);
  Request isend(int dst, int tag, const void* buf, std::size_t bytes);
  Request irecv(int src, int tag, void* buf, std::size_t bytes);
  /// Simultaneous exchange; deadlock-free regardless of peer order.
  void sendrecv(int dst, int sendtag, const void* sendbuf, std::size_t sendbytes, int src,
                int recvtag, void* recvbuf, std::size_t recvbytes);

  // -- collectives (tag space 0x7fff0000+ reserved) -------------------------
  void barrier();
  void bcast(void* buf, std::size_t bytes, int root);
  /// Gathers `bytes` from every rank into recvbuf (rank-major) on all ranks.
  void allgather(const void* sendbuf, std::size_t bytes, void* recvbuf);
  /// Element-wise double sum into root's recvbuf.
  void reduce_sum(const double* sendbuf, double* recvbuf, std::size_t count, int root);

private:
  friend class World;
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}

  World* world_;
  int rank_;
};

}  // namespace minimpi
