// Domain example: a GPU-resident image-filter pipeline (the Perlin workload
// of §IV-A2).  Demonstrates the paper's Flush/NoFlush distinction: when the
// next consumer of the image is another GPU filter, skipping the per-step
// flush (taskwait noflush) keeps the bands on the devices and the pipeline
// scales; flushing each step pays the PCIe round trip.
//
//   $ ./image_pipeline [gpus]
#include <cstdio>
#include <cstdlib>

#include "apps/perlin/perlin.hpp"

int main(int argc, char** argv) {
  int gpus = argc > 1 ? std::atoi(argv[1]) : 4;

  apps::perlin::Params p;
  p.dim_phys = 512;
  p.dim_logical = 1024;
  p.bands = 16;
  p.steps = 10;

  std::printf("Perlin pipeline: %g x %g logical image, %d bands, %d steps, %d GPUs\n",
              p.dim_logical, p.dim_logical, p.bands, p.steps, gpus);

  auto reference = apps::perlin::run_serial(p);

  for (bool flush : {true, false}) {
    p.flush = flush;
    ompss::Env env(apps::multi_gpu_node(gpus, p.byte_scale()));
    auto r = apps::perlin::run_ompss(env, p);
    bool ok = r.checksum == reference.checksum;
    std::printf("  %-8s %8.1f MPixels/s  (%.3f ms virtual, %s)\n",
                flush ? "Flush:" : "NoFlush:", r.mpixels_per_s, r.seconds * 1e3,
                ok ? "verified" : "WRONG RESULT");
  }
  std::printf("NoFlush wins because the image never leaves the GPUs between steps.\n");
  return 0;
}
