// Domain example: the paper's flagship workload — tiled matrix multiply on a
// simulated GPU cluster, exactly the code of Fig. 1, scheduled across nodes
// by the runtime.  Compares the best configuration (slave-to-slave
// transfers, parallel initialization, presend) against the worst, printing
// the transfer statistics that explain the difference.
//
//   $ ./matmul_cluster [nodes]
#include <cstdio>
#include <cstdlib>

#include "apps/matmul/matmul.hpp"

int main(int argc, char** argv) {
  int nodes = argc > 1 ? std::atoi(argv[1]) : 4;

  apps::matmul::Params p;
  p.nb = 12;
  p.bs_phys = 48;
  p.bs_logical = 12288.0 / p.nb;  // the paper's 12288^2 floats

  std::printf("Tiled matmul, %dx%d tiles of %.0f^2 floats, %d-node GPU cluster\n", p.nb, p.nb,
              p.bs_logical, nodes);

  auto reference = apps::matmul::run_serial(p);

  struct Setup {
    const char* name;
    bool stos;
    int presend;
    apps::matmul::InitMode init;
  };
  const Setup setups[] = {
      {"worst: MtoS, sequential init, no presend", false, 0, apps::matmul::InitMode::kSeq},
      {"best:  StoS, parallel SMP init, presend 2", true, 2, apps::matmul::InitMode::kSmp},
  };

  for (const Setup& s : setups) {
    auto cfg = apps::gpu_cluster(nodes, p.byte_scale());
    cfg.slave_to_slave = s.stos;
    cfg.presend = s.presend;
    cfg.node.cache_policy = "wb";
    cfg.node.overlap = true;
    cfg.node.prefetch = true;
    ompss::Env env(cfg);
    auto r = apps::matmul::run_ompss(env, p, s.init);

    bool ok = std::abs(r.checksum - reference.checksum) <
              std::abs(reference.checksum) * 1e-5 + 1e-3;
    std::printf("\n%s\n", s.name);
    std::printf("  %.1f GFLOPS in %.3f virtual seconds (%s)\n", r.gflops, r.seconds,
                ok ? "verified" : "WRONG RESULT");
    if (env.cluster() != nullptr) {
      auto& st = env.cluster()->stats();
      std::printf("  stagings: %llu (slave-to-slave: %llu, master relays: %llu)\n",
                  static_cast<unsigned long long>(st.count("cluster.stagings")),
                  static_cast<unsigned long long>(st.count("cluster.stos_transfers")),
                  static_cast<unsigned long long>(st.count("cluster.mtos_relays")));
      std::printf("  master NIC sent %.1f MB (logical)\n",
                  st.sum("cluster.master_tx_bytes") * p.byte_scale() / 1e6);
    }
  }
  return 0;
}
