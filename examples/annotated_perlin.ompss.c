/* Perlin-noise image filter with OmpSs pragmas (the paper's §IV-A2 workload
 * in its programming-model form; Table I counts this file as the OmpSs+CUDA
 * version).  Each band of rows is one GPU task; the taskwait at the end of
 * every step is the "Flush" variant — change it to `taskwait noflush` and
 * the image stays on the GPUs between steps.
 */
#include <cstdio>

#define DIM 256
#define BANDS 8
#define ROWS (DIM / BANDS)
#define STEPS 4

static unsigned image[DIM * DIM];

#pragma omp target device(cuda) copy_deps
#pragma omp task output([rows * DIM] band) cost(2000.0 * rows * DIM)
void perlin_band_task(unsigned *band, int row0, int rows, int step);

void perlin_band_task(unsigned *band, int row0, int rows, int step) {
  for (int r = 0; r < rows; ++r) {
    for (int x = 0; x < DIM; ++x) {
      unsigned h = (unsigned)(row0 + r) * 374761393u + (unsigned)x * 668265263u +
                   (unsigned)step * 2246822519u;
      h = (h ^ (h >> 13)) * 1274126177u;
      unsigned level = (h ^ (h >> 16)) & 0xFFu;
      band[r * DIM + x] = 0xFF000000u | (level << 16) | (level << 8) | level;
    }
  }
}

int main() {
  for (int step = 0; step < STEPS; ++step) {
    for (int b = 0; b < BANDS; ++b) perlin_band_task(&image[b * ROWS * DIM], b * ROWS, ROWS, step);
#pragma omp taskwait
  }

  /* The last step's pattern is pure function of coordinates: verify a pixel. */
  unsigned h = 5u * 374761393u + 7u * 668265263u + (unsigned)(STEPS - 1) * 2246822519u;
  h = (h ^ (h >> 13)) * 1274126177u;
  unsigned level = (h ^ (h >> 16)) & 0xFFu;
  unsigned expect = 0xFF000000u | (level << 16) | (level << 8) | level;
  int ok = image[5 * DIM + 7] == expect;
  std::printf("PERLIN check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
