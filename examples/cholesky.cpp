// Extension example: blocked Cholesky factorization — the canonical
// StarSs/OmpSs demonstration of *irregular* task dependences (the paper's
// §II cites the StarSs dependence machinery; matmul/STREAM only exercise
// regular graphs).  Four kernels (potrf, trsm, syrk, gemm) with in/inout
// clauses produce the classic trapezoidal DAG; the runtime extracts the
// wavefront parallelism across the simulated GPUs automatically.
//
//   $ ./cholesky [gpus]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/platform.hpp"
#include "ompss/ompss.hpp"

namespace {

constexpr int kNb = 8;          // tiles per dimension
constexpr std::size_t kBs = 48; // tile edge (floats)
constexpr double kBsLogical = 1024.0;

using Tile = std::vector<float>;

std::size_t tile_bytes() { return kBs * kBs * sizeof(float); }

// --- the four kernels (host reference implementations) ---------------------

void potrf(float* a) {  // Cholesky of one tile (lower)
  for (std::size_t k = 0; k < kBs; ++k) {
    a[k * kBs + k] = std::sqrt(a[k * kBs + k]);
    for (std::size_t i = k + 1; i < kBs; ++i) a[i * kBs + k] /= a[k * kBs + k];
    for (std::size_t j = k + 1; j < kBs; ++j)
      for (std::size_t i = j; i < kBs; ++i) a[i * kBs + j] -= a[i * kBs + k] * a[j * kBs + k];
  }
  for (std::size_t i = 0; i < kBs; ++i)
    for (std::size_t j = i + 1; j < kBs; ++j) a[i * kBs + j] = 0.0f;
}

void trsm(const float* l, float* a) {  // A <- A * L^-T
  for (std::size_t j = 0; j < kBs; ++j) {
    for (std::size_t i = 0; i < kBs; ++i) {
      float sum = a[i * kBs + j];
      for (std::size_t k = 0; k < j; ++k) sum -= a[i * kBs + k] * l[j * kBs + k];
      a[i * kBs + j] = sum / l[j * kBs + j];
    }
  }
}

void syrk(const float* a, float* c) {  // C <- C - A * A^T
  for (std::size_t i = 0; i < kBs; ++i)
    for (std::size_t j = 0; j < kBs; ++j) {
      float sum = 0;
      for (std::size_t k = 0; k < kBs; ++k) sum += a[i * kBs + k] * a[j * kBs + k];
      c[i * kBs + j] -= sum;
    }
}

void gemm(const float* a, const float* b, float* c) {  // C <- C - A * B^T
  for (std::size_t i = 0; i < kBs; ++i)
    for (std::size_t j = 0; j < kBs; ++j) {
      float sum = 0;
      for (std::size_t k = 0; k < kBs; ++k) sum += a[i * kBs + k] * b[j * kBs + k];
      c[i * kBs + j] -= sum;
    }
}

}  // namespace

int main(int argc, char** argv) {
  int gpus = argc > 1 ? std::atoi(argv[1]) : 4;
  double scale = kBsLogical / kBs;
  auto cfg = apps::multi_gpu_node(gpus, scale * scale);
  cfg.scheduler = "affinity";
  cfg.overlap = true;
  cfg.prefetch = true;
  ompss::Env env(cfg);

  // Build a symmetric positive-definite tiled matrix: A = B*B^T + n*I.
  std::vector<Tile> tiles(static_cast<std::size_t>(kNb * kNb), Tile(kBs * kBs));
  auto tile = [&](int i, int j) -> float* {
    return tiles[static_cast<std::size_t>(i * kNb + j)].data();
  };
  const std::size_t n = kNb * kBs;
  std::vector<float> full(n * n);
  unsigned state = 99;
  auto rnd = [&state] {
    state = state * 1664525u + 1013904223u;
    return static_cast<float>((state >> 8) & 0xFF) / 2048.0f;
  };
  std::vector<float> b(n * n);
  for (auto& v : b) v = rnd();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      float sum = (i == j) ? static_cast<float>(n) : 0.0f;
      for (std::size_t k = 0; k < n; ++k) sum += b[i * n + k] * b[j * n + k];
      full[i * n + j] = full[j * n + i] = sum;
    }
  for (int ti = 0; ti < kNb; ++ti)
    for (int tj = 0; tj < kNb; ++tj)
      for (std::size_t i = 0; i < kBs; ++i)
        for (std::size_t j = 0; j < kBs; ++j)
          tile(ti, tj)[i * kBs + j] = full[(ti * kBs + i) * n + (tj * kBs + j)];

  const double tile_flops = kBsLogical * kBsLogical * kBsLogical / 3.0;

  double seconds = 0;
  env.run([&] {
    double t0 = env.clock().now();
    for (int k = 0; k < kNb; ++k) {
      ompss::task()
          .device(ompss::Device::kCuda)
          .inout(tile(k, k), tile_bytes())
          .flops(tile_flops)
          .label("potrf")
          .run([](ompss::Ctx& c) { potrf(c.data_as<float>(0)); });
      for (int i = k + 1; i < kNb; ++i) {
        ompss::task()
            .device(ompss::Device::kCuda)
            .in(tile(k, k), tile_bytes())
            .inout(tile(i, k), tile_bytes())
            .flops(tile_flops)
            .label("trsm")
            .run([](ompss::Ctx& c) {
              trsm(c.data_as<const float>(0), c.data_as<float>(1));
            });
      }
      for (int i = k + 1; i < kNb; ++i) {
        ompss::task()
            .device(ompss::Device::kCuda)
            .in(tile(i, k), tile_bytes())
            .inout(tile(i, i), tile_bytes())
            .flops(tile_flops)
            .label("syrk")
            .run([](ompss::Ctx& c) {
              syrk(c.data_as<const float>(0), c.data_as<float>(1));
            });
        for (int j = k + 1; j < i; ++j) {
          ompss::task()
              .device(ompss::Device::kCuda)
              .in(tile(i, k), tile_bytes())
              .in(tile(j, k), tile_bytes())
              .inout(tile(i, j), tile_bytes())
              .flops(2.0 * tile_flops)
              .label("gemm")
              .run([](ompss::Ctx& c) {
                gemm(c.data_as<const float>(0), c.data_as<const float>(1),
                     c.data_as<float>(2));
              });
        }
      }
    }
    ompss::taskwait();
    seconds = env.clock().now() - t0;
  });

  // Verify: L * L^T must reconstruct A (lower triangle, loose tolerance).
  double max_err = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = 0;
      for (std::size_t k = 0; k <= j; ++k) {
        float lik = tile(static_cast<int>(i / kBs), static_cast<int>(k / kBs))[(i % kBs) * kBs +
                                                                               (k % kBs)];
        float ljk = tile(static_cast<int>(j / kBs), static_cast<int>(k / kBs))[(j % kBs) * kBs +
                                                                               (k % kBs)];
        sum += static_cast<double>(lik) * ljk;
      }
      max_err = std::max(max_err, std::abs(sum - full[i * n + j]) / (std::abs(full[i * n + j]) + 1));
    }
  }

  std::printf("Cholesky %dx%d tiles on %d GPUs: %.3f ms virtual, max rel err %.2e\n", kNb, kNb,
              gpus, seconds * 1e3, max_err);
  bool ok = max_err < 1e-2;
  std::printf("cholesky: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
