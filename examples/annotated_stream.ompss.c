/* STREAM with OmpSs pragmas — the paper's Fig. 2, in the dialect the mcc
 * translator understands.  Build it with:
 *
 *     mcc annotated_stream.ompss.c -o stream_gen.cpp
 *     c++ -std=c++20 stream_gen.cpp <ompss libs> -o stream
 *     OMPSS_ARGS='gpus=2,cache=wb' ./stream
 *
 * The cost() clause is an mcc extension: it tells the simulated platform how
 * much work each kernel represents.
 */
#include <cstdio>
#include <vector>

#define N 16384
#define BSIZE 2048
#define NTIMES 4

/* Block-section clauses ([lo:len] / [lo;len]): len elements starting at
 * element lo.  [0:n] covers the same bytes as [n]; spelled both ways here so
 * the shipped examples exercise the section syntax end to end. */
#pragma omp target device(cuda) copy_deps
#pragma omp task input([0:n] a) output([0:n] c) cost(2.0 * n)
void stream_copy(const double *a, double *c, int n);

#pragma omp target device(cuda) copy_deps
#pragma omp task input([0;n] c) output([0;n] b) cost(2.0 * n)
void stream_scale(const double *c, double *b, double scalar, int n);

#pragma omp target device(cuda) copy_deps
#pragma omp task input([n] a, [n] b) output([n] c) cost(3.0 * n)
void stream_add(const double *a, const double *b, double *c, int n);

#pragma omp target device(cuda) copy_deps
#pragma omp task input([n] b, [n] c) output([n] a) cost(3.0 * n)
void stream_triad(const double *b, const double *c, double *a, double scalar, int n);

void stream_copy(const double *a, double *c, int n) {
  for (int i = 0; i < n; ++i) c[i] = a[i];
}

void stream_scale(const double *c, double *b, double scalar, int n) {
  for (int i = 0; i < n; ++i) b[i] = scalar * c[i];
}

void stream_add(const double *a, const double *b, double *c, int n) {
  for (int i = 0; i < n; ++i) c[i] = a[i] + b[i];
}

void stream_triad(const double *b, const double *c, double *a, double scalar, int n) {
  for (int i = 0; i < n; ++i) a[i] = b[i] + scalar * c[i];
}

int main() {
  static std::vector<double> a(N, 1.0), b(N, 0.0), c(N, 0.0);
  const double scalar = 3.0;

  for (int k = 0; k < NTIMES; ++k) {
    for (int j = 0; j < N; j += BSIZE) stream_copy(&a[j], &c[j], BSIZE);
    for (int j = 0; j < N; j += BSIZE) stream_scale(&c[j], &b[j], scalar, BSIZE);
    for (int j = 0; j < N; j += BSIZE) stream_add(&a[j], &b[j], &c[j], BSIZE);
    for (int j = 0; j < N; j += BSIZE) stream_triad(&b[j], &c[j], &a[j], scalar, BSIZE);
  }
#pragma omp taskwait

  /* a *= 3*(2+3) = 15 each iteration; verify the closed form. */
  double expect = 1.0;
  for (int k = 0; k < NTIMES; ++k) expect *= 15.0;
  int ok = 1;
  for (int i = 0; i < N; ++i) {
    if (a[i] != expect) ok = 0;
  }
  std::printf("STREAM check: %s (a[0]=%g, expect=%g)\n", ok ? "PASS" : "FAIL", a[0], expect);
  return ok ? 0 : 1;
}
