// Domain example: the N-Body simulation on a GPU cluster — the paper's
// hardest communication pattern (all-to-all position exchange after every
// step).  Runs the same code on 1 node and on a cluster and reports the
// speedup the runtime extracts despite the exchange.
//
//   $ ./nbody_sim [nodes]
#include <cstdio>
#include <cstdlib>

#include "apps/nbody/nbody.hpp"

int main(int argc, char** argv) {
  int nodes = argc > 1 ? std::atoi(argv[1]) : 4;

  apps::nbody::Params p;
  p.n_phys = 1024;
  p.n_logical = 20000;  // the paper's system
  p.nb = 8;
  p.iters = 10;

  std::printf("N-Body: %g logical bodies in %d blocks, %d steps\n", p.n_logical, p.nb, p.iters);

  auto reference = apps::nbody::run_serial(p);

  double t1 = 0;
  for (int n : {1, nodes}) {
    auto cfg = apps::gpu_cluster(n, p.byte_scale());
    cfg.slave_to_slave = true;
    cfg.presend = 1;
    cfg.node.overlap = true;
    cfg.node.prefetch = true;
    cfg.rr_chunk = p.nb / n > 0 ? p.nb / n : 1;
    ompss::Env env(cfg);
    auto r = apps::nbody::run_ompss(env, p);
    bool ok = r.checksum == reference.checksum;
    if (n == 1) t1 = r.seconds;
    std::printf("  %d node(s): %8.1f GFLOPS, %.3f ms virtual  (%s)%s\n", n, r.gflops,
                r.seconds * 1e3, ok ? "verified" : "WRONG RESULT",
                n > 1 ? "" : "  [baseline]");
    if (n > 1)
      std::printf("  speedup on %d nodes: %.2fx\n", n, t1 / r.seconds);
  }
  return 0;
}
