/* N-Body with OmpSs pragmas (the paper's §IV-A2 workload in its
 * programming-model form; Table I counts this file as the OmpSs+CUDA
 * version).  One task per target block per step reads every source block of
 * the current positions (the all-to-all) and writes the next positions —
 * ping-pong buffers alternate across steps.
 */
#include <cstdio>
#include <cmath>

#define N 512
#define NB 4
#define BB (N / NB)
#define STEPS 3

static float pos[2][NB][BB * 4];
static float vel[NB][BB * 4];

#pragma omp target device(cuda) copy_deps
#pragma omp task input([bb * 4] p0, [bb * 4] p1, [bb * 4] p2, [bb * 4] p3, [bb * 4] me) \
    inout([bb * 4] v) output([bb * 4] out) cost(20.0 * bb * 4 * bb)
void forces_task(const float *p0, const float *p1, const float *p2, const float *p3,
                 const float *me, float *v, float *out, int bb, float dt);

void forces_task(const float *p0, const float *p1, const float *p2, const float *p3,
                 const float *me, float *v, float *out, int bb, float dt) {
  const float *blocks[4] = {p0, p1, p2, p3};
  for (int t = 0; t < bb; ++t) {
    float ax = 0, ay = 0, az = 0;
    for (int b = 0; b < 4; ++b) {
      const float *src = blocks[b];
      for (int s = 0; s < bb; ++s) {
        float dx = src[s * 4] - me[t * 4];
        float dy = src[s * 4 + 1] - me[t * 4 + 1];
        float dz = src[s * 4 + 2] - me[t * 4 + 2];
        float inv = 1.0f / std::sqrt(dx * dx + dy * dy + dz * dz + 0.1f);
        float f = inv * inv * inv * src[s * 4 + 3];
        ax += dx * f;
        ay += dy * f;
        az += dz * f;
      }
    }
    v[t * 4] += ax * dt;
    v[t * 4 + 1] += ay * dt;
    v[t * 4 + 2] += az * dt;
    out[t * 4] = me[t * 4] + v[t * 4] * dt;
    out[t * 4 + 1] = me[t * 4 + 1] + v[t * 4 + 1] * dt;
    out[t * 4 + 2] = me[t * 4 + 2] + v[t * 4 + 2] * dt;
    out[t * 4 + 3] = me[t * 4 + 3];
  }
}

int main() {
  for (int b = 0; b < NB; ++b) {
    for (int i = 0; i < BB; ++i) {
      pos[0][b][i * 4] = (float)((b * BB + i) % 17) - 8.0f;
      pos[0][b][i * 4 + 1] = (float)((b * BB + i) % 13) - 6.0f;
      pos[0][b][i * 4 + 2] = (float)((b * BB + i) % 7) - 3.0f;
      pos[0][b][i * 4 + 3] = 1.0f;
    }
  }

  int cur = 0;
  for (int step = 0; step < STEPS; ++step) {
    for (int b = 0; b < NB; ++b)
      forces_task(pos[cur][0], pos[cur][1], pos[cur][2], pos[cur][3], pos[cur][b], vel[b],
                  pos[1 - cur][b], BB, 0.01f);
    cur = 1 - cur;
  }
#pragma omp taskwait

  /* Momentum-style sanity check: the system should have drifted, finitely. */
  double sum = 0;
  for (int b = 0; b < NB; ++b)
    for (int i = 0; i < BB * 4; ++i) sum += pos[cur][b][i];
  int ok = std::isfinite(sum) && sum != 0.0;
  std::printf("NBODY check: %s (sum=%.3f)\n", ok ? "PASS" : "FAIL", sum);
  return ok ? 0 : 1;
}
