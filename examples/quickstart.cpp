// Quickstart: the smallest complete OmpSs program.
//
// Three tasks with a data dependence between them run on a simulated node
// with two GPUs; the runtime builds the dependency graph from the in/out
// clauses, moves the data, and overlaps whatever it can.
//
//   $ ./quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "ompss/ompss.hpp"

int main() {
  // A node with 2 GPUs, 4 CPU workers, write-back caching (the defaults the
  // paper's runtime uses).
  common::Config cfg;
  cfg.parse_args("gpus=2,smp_workers=4,cache=wb,scheduler=dep");
  ompss::Env env(cfg);

  static constexpr std::size_t kN = 1 << 16;
  std::vector<float> x(kN), y(kN), z(kN);

  env.run([&] {
    // Task 1 (CPU): initialize x.
    ompss::task()
        .device(ompss::Device::kSmp)
        .out(x.data(), kN * sizeof(float))
        .label("init")
        .run([](ompss::Ctx& ctx) {
          auto* p = ctx.data_as<float>(0);
          std::iota(p, p + kN, 0.0f);
        });

    // Task 2 (GPU): y = 2*x.  Runs only after task 1 (reads x), on whichever
    // GPU the scheduler picks; the runtime copies x in and keeps y on device.
    ompss::task()
        .device(ompss::Device::kCuda)
        .in(x.data(), kN * sizeof(float))
        .out(y.data(), kN * sizeof(float))
        .flops(2.0 * kN)
        .label("scale")
        .run([](ompss::Ctx& ctx) {
          const auto* xs = ctx.data_as<const float>(0);
          auto* ys = ctx.data_as<float>(1);
          for (std::size_t i = 0; i < kN; ++i) ys[i] = 2.0f * xs[i];
        });

    // Task 3 (GPU): z = x + y.
    ompss::task()
        .device(ompss::Device::kCuda)
        .in(x.data(), kN * sizeof(float))
        .in(y.data(), kN * sizeof(float))
        .out(z.data(), kN * sizeof(float))
        .flops(1.0 * kN)
        .label("add")
        .run([](ompss::Ctx& ctx) {
          const auto* xs = ctx.data_as<const float>(0);
          const auto* ys = ctx.data_as<const float>(1);
          auto* zs = ctx.data_as<float>(2);
          for (std::size_t i = 0; i < kN; ++i) zs[i] = xs[i] + ys[i];
        });

    // Wait for everything and flush results back to host memory.
    ompss::taskwait();

    std::printf("z[1] = %g (expect 3), z[%zu] = %g (expect %zu)\n", z[1], kN - 1, z[kN - 1],
                3 * (kN - 1));
    std::printf("virtual time: %.3f ms\n", env.clock().now() * 1e3);
  });

  bool ok = z[1] == 3.0f && z[kN - 1] == static_cast<float>(3 * (kN - 1));
  std::printf("quickstart: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
