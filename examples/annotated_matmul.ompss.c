/* Tiled matrix multiply with OmpSs pragmas — the paper's Fig. 1, in the
 * dialect the mcc translator understands.  This file is also what Table I
 * counts as the OmpSs+CUDA version: the serial code plus pragmas (the
 * sgemm tile kernel stands in for the CUBLAS call).
 *
 *     mcc annotated_matmul.ompss.c -o gen.cpp && c++ ... && OMPSS_ARGS='gpus=4' ./a.out
 */
#include <cstdio>
#include <cstdlib>

#define NB 8
#define BS 32

static float A[NB * NB][BS * BS];
static float B[NB * NB][BS * BS];
static float C[NB * NB][BS * BS];

#pragma omp target device(cuda) copy_deps
#pragma omp task input([bs * bs] a, [bs * bs] b) inout([bs * bs] c) cost(2.0 * bs * bs * bs)
void sgemm_tile(const float *a, const float *b, float *c, int bs);

void sgemm_tile(const float *a, const float *b, float *c, int bs) {
  for (int i = 0; i < bs; ++i)
    for (int k = 0; k < bs; ++k)
      for (int j = 0; j < bs; ++j) c[i * bs + j] += a[i * bs + k] * b[k * bs + j];
}

static void init(float *t, unsigned seed) {
  for (int i = 0; i < BS * BS; ++i) {
    seed = seed * 1664525u + 1013904223u;
    t[i] = (float)((seed >> 8) & 0xFF) / 256.0f - 0.5f;
  }
}

int main() {
  for (int i = 0; i < NB * NB; ++i) {
    init(A[i], 7u + i);
    init(B[i], 1007u + i);
  }

  for (int i = 0; i < NB; ++i)
    for (int j = 0; j < NB; ++j)
      for (int k = 0; k < NB; ++k)
        sgemm_tile(A[i * NB + k], B[k * NB + j], C[i * NB + j], BS);
#pragma omp taskwait

  /* Spot-check tile C(0,0) against a host recomputation. */
  static float ref[BS * BS];
  for (int k = 0; k < NB; ++k) {
    const float *a = A[0 * NB + k];
    const float *b = B[k * NB + 0];
    for (int i = 0; i < BS; ++i)
      for (int kk = 0; kk < BS; ++kk)
        for (int j = 0; j < BS; ++j) ref[i * BS + j] += a[i * BS + kk] * b[kk * BS + j];
  }
  int ok = 1;
  for (int i = 0; i < BS * BS; ++i)
    if (C[0][i] != ref[i]) ok = 0;
  std::printf("MATMUL check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
