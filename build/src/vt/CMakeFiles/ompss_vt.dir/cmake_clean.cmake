file(REMOVE_RECURSE
  "CMakeFiles/ompss_vt.dir/clock.cpp.o"
  "CMakeFiles/ompss_vt.dir/clock.cpp.o.d"
  "CMakeFiles/ompss_vt.dir/sync.cpp.o"
  "CMakeFiles/ompss_vt.dir/sync.cpp.o.d"
  "libompss_vt.a"
  "libompss_vt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompss_vt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
