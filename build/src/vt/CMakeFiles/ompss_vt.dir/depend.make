# Empty dependencies file for ompss_vt.
# This may be replaced when dependencies are built.
