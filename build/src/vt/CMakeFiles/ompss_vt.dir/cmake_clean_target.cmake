file(REMOVE_RECURSE
  "libompss_vt.a"
)
