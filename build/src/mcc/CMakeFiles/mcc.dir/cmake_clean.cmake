file(REMOVE_RECURSE
  "CMakeFiles/mcc.dir/main.cpp.o"
  "CMakeFiles/mcc.dir/main.cpp.o.d"
  "mcc"
  "mcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
