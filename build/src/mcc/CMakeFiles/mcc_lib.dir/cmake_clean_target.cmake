file(REMOVE_RECURSE
  "libmcc_lib.a"
)
