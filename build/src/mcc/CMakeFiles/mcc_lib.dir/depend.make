# Empty dependencies file for mcc_lib.
# This may be replaced when dependencies are built.
