file(REMOVE_RECURSE
  "CMakeFiles/mcc_lib.dir/funcsig.cpp.o"
  "CMakeFiles/mcc_lib.dir/funcsig.cpp.o.d"
  "CMakeFiles/mcc_lib.dir/lexer.cpp.o"
  "CMakeFiles/mcc_lib.dir/lexer.cpp.o.d"
  "CMakeFiles/mcc_lib.dir/pragma.cpp.o"
  "CMakeFiles/mcc_lib.dir/pragma.cpp.o.d"
  "CMakeFiles/mcc_lib.dir/translate.cpp.o"
  "CMakeFiles/mcc_lib.dir/translate.cpp.o.d"
  "libmcc_lib.a"
  "libmcc_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
