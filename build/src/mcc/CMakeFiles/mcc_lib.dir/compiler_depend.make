# Empty compiler generated dependencies file for mcc_lib.
# This may be replaced when dependencies are built.
