
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/matmul/cuda.cpp" "src/apps/CMakeFiles/apps.dir/matmul/cuda.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/matmul/cuda.cpp.o.d"
  "/root/repo/src/apps/matmul/kernels.cpp" "src/apps/CMakeFiles/apps.dir/matmul/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/matmul/kernels.cpp.o.d"
  "/root/repo/src/apps/matmul/mpicuda.cpp" "src/apps/CMakeFiles/apps.dir/matmul/mpicuda.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/matmul/mpicuda.cpp.o.d"
  "/root/repo/src/apps/matmul/ompss.cpp" "src/apps/CMakeFiles/apps.dir/matmul/ompss.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/matmul/ompss.cpp.o.d"
  "/root/repo/src/apps/matmul/serial.cpp" "src/apps/CMakeFiles/apps.dir/matmul/serial.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/matmul/serial.cpp.o.d"
  "/root/repo/src/apps/nbody/cuda.cpp" "src/apps/CMakeFiles/apps.dir/nbody/cuda.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/nbody/cuda.cpp.o.d"
  "/root/repo/src/apps/nbody/kernels.cpp" "src/apps/CMakeFiles/apps.dir/nbody/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/nbody/kernels.cpp.o.d"
  "/root/repo/src/apps/nbody/mpicuda.cpp" "src/apps/CMakeFiles/apps.dir/nbody/mpicuda.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/nbody/mpicuda.cpp.o.d"
  "/root/repo/src/apps/nbody/ompss.cpp" "src/apps/CMakeFiles/apps.dir/nbody/ompss.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/nbody/ompss.cpp.o.d"
  "/root/repo/src/apps/nbody/serial.cpp" "src/apps/CMakeFiles/apps.dir/nbody/serial.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/nbody/serial.cpp.o.d"
  "/root/repo/src/apps/perlin/cuda.cpp" "src/apps/CMakeFiles/apps.dir/perlin/cuda.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/perlin/cuda.cpp.o.d"
  "/root/repo/src/apps/perlin/kernels.cpp" "src/apps/CMakeFiles/apps.dir/perlin/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/perlin/kernels.cpp.o.d"
  "/root/repo/src/apps/perlin/mpicuda.cpp" "src/apps/CMakeFiles/apps.dir/perlin/mpicuda.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/perlin/mpicuda.cpp.o.d"
  "/root/repo/src/apps/perlin/ompss.cpp" "src/apps/CMakeFiles/apps.dir/perlin/ompss.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/perlin/ompss.cpp.o.d"
  "/root/repo/src/apps/perlin/serial.cpp" "src/apps/CMakeFiles/apps.dir/perlin/serial.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/perlin/serial.cpp.o.d"
  "/root/repo/src/apps/platform.cpp" "src/apps/CMakeFiles/apps.dir/platform.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/platform.cpp.o.d"
  "/root/repo/src/apps/stream/cuda.cpp" "src/apps/CMakeFiles/apps.dir/stream/cuda.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/stream/cuda.cpp.o.d"
  "/root/repo/src/apps/stream/kernels.cpp" "src/apps/CMakeFiles/apps.dir/stream/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/stream/kernels.cpp.o.d"
  "/root/repo/src/apps/stream/mpicuda.cpp" "src/apps/CMakeFiles/apps.dir/stream/mpicuda.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/stream/mpicuda.cpp.o.d"
  "/root/repo/src/apps/stream/ompss.cpp" "src/apps/CMakeFiles/apps.dir/stream/ompss.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/stream/ompss.cpp.o.d"
  "/root/repo/src/apps/stream/serial.cpp" "src/apps/CMakeFiles/apps.dir/stream/serial.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/stream/serial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ompss/CMakeFiles/ompss_api.dir/DependInfo.cmake"
  "/root/repo/build/src/nanos/CMakeFiles/nanos.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simcuda/CMakeFiles/simcuda.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/vt/CMakeFiles/ompss_vt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ompss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
