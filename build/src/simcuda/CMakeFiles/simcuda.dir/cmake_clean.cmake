file(REMOVE_RECURSE
  "CMakeFiles/simcuda.dir/simcuda.cpp.o"
  "CMakeFiles/simcuda.dir/simcuda.cpp.o.d"
  "libsimcuda.a"
  "libsimcuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
