# Empty compiler generated dependencies file for simcuda.
# This may be replaced when dependencies are built.
