file(REMOVE_RECURSE
  "libsimcuda.a"
)
