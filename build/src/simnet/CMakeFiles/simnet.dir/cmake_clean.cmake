file(REMOVE_RECURSE
  "CMakeFiles/simnet.dir/simnet.cpp.o"
  "CMakeFiles/simnet.dir/simnet.cpp.o.d"
  "libsimnet.a"
  "libsimnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
