# Empty dependencies file for simnet.
# This may be replaced when dependencies are built.
