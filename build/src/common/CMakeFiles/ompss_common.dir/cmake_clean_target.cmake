file(REMOVE_RECURSE
  "libompss_common.a"
)
