file(REMOVE_RECURSE
  "CMakeFiles/ompss_common.dir/allocator.cpp.o"
  "CMakeFiles/ompss_common.dir/allocator.cpp.o.d"
  "CMakeFiles/ompss_common.dir/config.cpp.o"
  "CMakeFiles/ompss_common.dir/config.cpp.o.d"
  "CMakeFiles/ompss_common.dir/log.cpp.o"
  "CMakeFiles/ompss_common.dir/log.cpp.o.d"
  "CMakeFiles/ompss_common.dir/stats.cpp.o"
  "CMakeFiles/ompss_common.dir/stats.cpp.o.d"
  "libompss_common.a"
  "libompss_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompss_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
