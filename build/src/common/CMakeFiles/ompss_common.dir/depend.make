# Empty dependencies file for ompss_common.
# This may be replaced when dependencies are built.
