file(REMOVE_RECURSE
  "CMakeFiles/nanos.dir/cluster.cpp.o"
  "CMakeFiles/nanos.dir/cluster.cpp.o.d"
  "CMakeFiles/nanos.dir/coherence.cpp.o"
  "CMakeFiles/nanos.dir/coherence.cpp.o.d"
  "CMakeFiles/nanos.dir/dep.cpp.o"
  "CMakeFiles/nanos.dir/dep.cpp.o.d"
  "CMakeFiles/nanos.dir/runtime.cpp.o"
  "CMakeFiles/nanos.dir/runtime.cpp.o.d"
  "CMakeFiles/nanos.dir/scheduler.cpp.o"
  "CMakeFiles/nanos.dir/scheduler.cpp.o.d"
  "CMakeFiles/nanos.dir/task.cpp.o"
  "CMakeFiles/nanos.dir/task.cpp.o.d"
  "CMakeFiles/nanos.dir/trace.cpp.o"
  "CMakeFiles/nanos.dir/trace.cpp.o.d"
  "libnanos.a"
  "libnanos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
