file(REMOVE_RECURSE
  "libnanos.a"
)
