# Empty dependencies file for nanos.
# This may be replaced when dependencies are built.
