
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nanos/cluster.cpp" "src/nanos/CMakeFiles/nanos.dir/cluster.cpp.o" "gcc" "src/nanos/CMakeFiles/nanos.dir/cluster.cpp.o.d"
  "/root/repo/src/nanos/coherence.cpp" "src/nanos/CMakeFiles/nanos.dir/coherence.cpp.o" "gcc" "src/nanos/CMakeFiles/nanos.dir/coherence.cpp.o.d"
  "/root/repo/src/nanos/dep.cpp" "src/nanos/CMakeFiles/nanos.dir/dep.cpp.o" "gcc" "src/nanos/CMakeFiles/nanos.dir/dep.cpp.o.d"
  "/root/repo/src/nanos/runtime.cpp" "src/nanos/CMakeFiles/nanos.dir/runtime.cpp.o" "gcc" "src/nanos/CMakeFiles/nanos.dir/runtime.cpp.o.d"
  "/root/repo/src/nanos/scheduler.cpp" "src/nanos/CMakeFiles/nanos.dir/scheduler.cpp.o" "gcc" "src/nanos/CMakeFiles/nanos.dir/scheduler.cpp.o.d"
  "/root/repo/src/nanos/task.cpp" "src/nanos/CMakeFiles/nanos.dir/task.cpp.o" "gcc" "src/nanos/CMakeFiles/nanos.dir/task.cpp.o.d"
  "/root/repo/src/nanos/trace.cpp" "src/nanos/CMakeFiles/nanos.dir/trace.cpp.o" "gcc" "src/nanos/CMakeFiles/nanos.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcuda/CMakeFiles/simcuda.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/vt/CMakeFiles/ompss_vt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ompss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
