# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("vt")
subdirs("simcuda")
subdirs("simnet")
subdirs("minimpi")
subdirs("nanos")
subdirs("ompss")
subdirs("mcc")
subdirs("apps")
