# Empty compiler generated dependencies file for ompss_api.
# This may be replaced when dependencies are built.
