file(REMOVE_RECURSE
  "CMakeFiles/ompss_api.dir/ompss.cpp.o"
  "CMakeFiles/ompss_api.dir/ompss.cpp.o.d"
  "libompss_api.a"
  "libompss_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompss_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
