file(REMOVE_RECURSE
  "libompss_api.a"
)
