# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example.quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example.quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.cholesky]=] "/root/repo/build/examples/cholesky")
set_tests_properties([=[example.cholesky]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.stream_from_pragmas]=] "/root/repo/build/examples/stream_from_pragmas")
set_tests_properties([=[example.stream_from_pragmas]=] PROPERTIES  ENVIRONMENT "OMPSS_ARGS=gpus=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.matmul_from_pragmas]=] "/root/repo/build/examples/matmul_from_pragmas")
set_tests_properties([=[example.matmul_from_pragmas]=] PROPERTIES  ENVIRONMENT "OMPSS_ARGS=gpus=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.perlin_from_pragmas]=] "/root/repo/build/examples/perlin_from_pragmas")
set_tests_properties([=[example.perlin_from_pragmas]=] PROPERTIES  ENVIRONMENT "OMPSS_ARGS=gpus=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.nbody_from_pragmas]=] "/root/repo/build/examples/nbody_from_pragmas")
set_tests_properties([=[example.nbody_from_pragmas]=] PROPERTIES  ENVIRONMENT "OMPSS_ARGS=gpus=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
