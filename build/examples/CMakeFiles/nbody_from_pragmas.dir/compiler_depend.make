# Empty compiler generated dependencies file for nbody_from_pragmas.
# This may be replaced when dependencies are built.
