file(REMOVE_RECURSE
  "CMakeFiles/nbody_from_pragmas.dir/nbody_from_pragmas.cpp.o"
  "CMakeFiles/nbody_from_pragmas.dir/nbody_from_pragmas.cpp.o.d"
  "nbody_from_pragmas"
  "nbody_from_pragmas.cpp"
  "nbody_from_pragmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_from_pragmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
