# Empty compiler generated dependencies file for matmul_from_pragmas.
# This may be replaced when dependencies are built.
