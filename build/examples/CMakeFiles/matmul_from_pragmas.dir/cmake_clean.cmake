file(REMOVE_RECURSE
  "CMakeFiles/matmul_from_pragmas.dir/matmul_from_pragmas.cpp.o"
  "CMakeFiles/matmul_from_pragmas.dir/matmul_from_pragmas.cpp.o.d"
  "matmul_from_pragmas"
  "matmul_from_pragmas.cpp"
  "matmul_from_pragmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_from_pragmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
