file(REMOVE_RECURSE
  "CMakeFiles/stream_from_pragmas.dir/stream_from_pragmas.cpp.o"
  "CMakeFiles/stream_from_pragmas.dir/stream_from_pragmas.cpp.o.d"
  "stream_from_pragmas"
  "stream_from_pragmas.cpp"
  "stream_from_pragmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_from_pragmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
