# Empty compiler generated dependencies file for stream_from_pragmas.
# This may be replaced when dependencies are built.
