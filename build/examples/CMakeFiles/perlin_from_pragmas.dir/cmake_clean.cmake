file(REMOVE_RECURSE
  "CMakeFiles/perlin_from_pragmas.dir/perlin_from_pragmas.cpp.o"
  "CMakeFiles/perlin_from_pragmas.dir/perlin_from_pragmas.cpp.o.d"
  "perlin_from_pragmas"
  "perlin_from_pragmas.cpp"
  "perlin_from_pragmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perlin_from_pragmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
