# Empty compiler generated dependencies file for perlin_from_pragmas.
# This may be replaced when dependencies are built.
