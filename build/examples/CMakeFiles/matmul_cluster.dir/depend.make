# Empty dependencies file for matmul_cluster.
# This may be replaced when dependencies are built.
