# Empty dependencies file for fig09_matmul_cluster.
# This may be replaced when dependencies are built.
