file(REMOVE_RECURSE
  "CMakeFiles/fig09_matmul_cluster.dir/fig09_matmul_cluster.cpp.o"
  "CMakeFiles/fig09_matmul_cluster.dir/fig09_matmul_cluster.cpp.o.d"
  "fig09_matmul_cluster"
  "fig09_matmul_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_matmul_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
