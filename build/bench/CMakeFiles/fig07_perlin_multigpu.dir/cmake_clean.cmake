file(REMOVE_RECURSE
  "CMakeFiles/fig07_perlin_multigpu.dir/fig07_perlin_multigpu.cpp.o"
  "CMakeFiles/fig07_perlin_multigpu.dir/fig07_perlin_multigpu.cpp.o.d"
  "fig07_perlin_multigpu"
  "fig07_perlin_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_perlin_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
