# Empty dependencies file for fig07_perlin_multigpu.
# This may be replaced when dependencies are built.
