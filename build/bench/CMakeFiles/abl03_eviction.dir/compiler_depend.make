# Empty compiler generated dependencies file for abl03_eviction.
# This may be replaced when dependencies are built.
