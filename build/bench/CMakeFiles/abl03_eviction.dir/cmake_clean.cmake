file(REMOVE_RECURSE
  "CMakeFiles/abl03_eviction.dir/abl03_eviction.cpp.o"
  "CMakeFiles/abl03_eviction.dir/abl03_eviction.cpp.o.d"
  "abl03_eviction"
  "abl03_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
