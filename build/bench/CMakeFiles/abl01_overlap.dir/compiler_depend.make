# Empty compiler generated dependencies file for abl01_overlap.
# This may be replaced when dependencies are built.
