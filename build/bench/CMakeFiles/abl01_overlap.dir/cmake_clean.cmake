file(REMOVE_RECURSE
  "CMakeFiles/abl01_overlap.dir/abl01_overlap.cpp.o"
  "CMakeFiles/abl01_overlap.dir/abl01_overlap.cpp.o.d"
  "abl01_overlap"
  "abl01_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
