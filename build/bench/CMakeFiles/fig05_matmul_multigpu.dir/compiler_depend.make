# Empty compiler generated dependencies file for fig05_matmul_multigpu.
# This may be replaced when dependencies are built.
