file(REMOVE_RECURSE
  "CMakeFiles/fig05_matmul_multigpu.dir/fig05_matmul_multigpu.cpp.o"
  "CMakeFiles/fig05_matmul_multigpu.dir/fig05_matmul_multigpu.cpp.o.d"
  "fig05_matmul_multigpu"
  "fig05_matmul_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_matmul_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
