file(REMOVE_RECURSE
  "CMakeFiles/fig12_perlin_cluster.dir/fig12_perlin_cluster.cpp.o"
  "CMakeFiles/fig12_perlin_cluster.dir/fig12_perlin_cluster.cpp.o.d"
  "fig12_perlin_cluster"
  "fig12_perlin_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_perlin_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
