file(REMOVE_RECURSE
  "CMakeFiles/fig06_stream_multigpu.dir/fig06_stream_multigpu.cpp.o"
  "CMakeFiles/fig06_stream_multigpu.dir/fig06_stream_multigpu.cpp.o.d"
  "fig06_stream_multigpu"
  "fig06_stream_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_stream_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
