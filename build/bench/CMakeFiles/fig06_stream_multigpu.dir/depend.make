# Empty dependencies file for fig06_stream_multigpu.
# This may be replaced when dependencies are built.
