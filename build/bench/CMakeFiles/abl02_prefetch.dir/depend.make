# Empty dependencies file for abl02_prefetch.
# This may be replaced when dependencies are built.
