file(REMOVE_RECURSE
  "CMakeFiles/abl02_prefetch.dir/abl02_prefetch.cpp.o"
  "CMakeFiles/abl02_prefetch.dir/abl02_prefetch.cpp.o.d"
  "abl02_prefetch"
  "abl02_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
