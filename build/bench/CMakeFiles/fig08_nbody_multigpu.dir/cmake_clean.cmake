file(REMOVE_RECURSE
  "CMakeFiles/fig08_nbody_multigpu.dir/fig08_nbody_multigpu.cpp.o"
  "CMakeFiles/fig08_nbody_multigpu.dir/fig08_nbody_multigpu.cpp.o.d"
  "fig08_nbody_multigpu"
  "fig08_nbody_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_nbody_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
