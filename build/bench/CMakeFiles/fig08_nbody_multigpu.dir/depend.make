# Empty dependencies file for fig08_nbody_multigpu.
# This may be replaced when dependencies are built.
