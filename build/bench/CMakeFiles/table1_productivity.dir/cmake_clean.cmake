file(REMOVE_RECURSE
  "CMakeFiles/table1_productivity.dir/table1_productivity.cpp.o"
  "CMakeFiles/table1_productivity.dir/table1_productivity.cpp.o.d"
  "table1_productivity"
  "table1_productivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_productivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
