# Empty compiler generated dependencies file for table1_productivity.
# This may be replaced when dependencies are built.
