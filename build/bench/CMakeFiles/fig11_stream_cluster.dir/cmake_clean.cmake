file(REMOVE_RECURSE
  "CMakeFiles/fig11_stream_cluster.dir/fig11_stream_cluster.cpp.o"
  "CMakeFiles/fig11_stream_cluster.dir/fig11_stream_cluster.cpp.o.d"
  "fig11_stream_cluster"
  "fig11_stream_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_stream_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
