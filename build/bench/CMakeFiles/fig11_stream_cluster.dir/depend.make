# Empty dependencies file for fig11_stream_cluster.
# This may be replaced when dependencies are built.
