file(REMOVE_RECURSE
  "CMakeFiles/fig13_nbody_cluster.dir/fig13_nbody_cluster.cpp.o"
  "CMakeFiles/fig13_nbody_cluster.dir/fig13_nbody_cluster.cpp.o.d"
  "fig13_nbody_cluster"
  "fig13_nbody_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_nbody_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
