# Empty dependencies file for fig13_nbody_cluster.
# This may be replaced when dependencies are built.
