file(REMOVE_RECURSE
  "CMakeFiles/fig10_matmul_vs_mpi.dir/fig10_matmul_vs_mpi.cpp.o"
  "CMakeFiles/fig10_matmul_vs_mpi.dir/fig10_matmul_vs_mpi.cpp.o.d"
  "fig10_matmul_vs_mpi"
  "fig10_matmul_vs_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_matmul_vs_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
