# Empty dependencies file for fig10_matmul_vs_mpi.
# This may be replaced when dependencies are built.
