# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/vt_test[1]_include.cmake")
include("/root/repo/build/tests/simcuda_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_test[1]_include.cmake")
include("/root/repo/build/tests/dep_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/apps_matmul_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/ompss_api_test[1]_include.cmake")
include("/root/repo/build/tests/mcc_test[1]_include.cmake")
