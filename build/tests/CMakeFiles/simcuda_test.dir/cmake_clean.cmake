file(REMOVE_RECURSE
  "CMakeFiles/simcuda_test.dir/simcuda_test.cpp.o"
  "CMakeFiles/simcuda_test.dir/simcuda_test.cpp.o.d"
  "simcuda_test"
  "simcuda_test.pdb"
  "simcuda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcuda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
