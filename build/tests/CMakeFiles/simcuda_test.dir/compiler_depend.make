# Empty compiler generated dependencies file for simcuda_test.
# This may be replaced when dependencies are built.
