file(REMOVE_RECURSE
  "CMakeFiles/ompss_api_test.dir/ompss_api_test.cpp.o"
  "CMakeFiles/ompss_api_test.dir/ompss_api_test.cpp.o.d"
  "ompss_api_test"
  "ompss_api_test.pdb"
  "ompss_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompss_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
