file(REMOVE_RECURSE
  "CMakeFiles/dep_test.dir/dep_test.cpp.o"
  "CMakeFiles/dep_test.dir/dep_test.cpp.o.d"
  "dep_test"
  "dep_test.pdb"
  "dep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
