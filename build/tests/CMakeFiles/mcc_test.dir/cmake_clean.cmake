file(REMOVE_RECURSE
  "CMakeFiles/mcc_test.dir/mcc_test.cpp.o"
  "CMakeFiles/mcc_test.dir/mcc_test.cpp.o.d"
  "mcc_test"
  "mcc_test.pdb"
  "mcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
