# Empty dependencies file for mcc_test.
# This may be replaced when dependencies are built.
