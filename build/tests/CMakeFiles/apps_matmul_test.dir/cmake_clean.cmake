file(REMOVE_RECURSE
  "CMakeFiles/apps_matmul_test.dir/apps_matmul_test.cpp.o"
  "CMakeFiles/apps_matmul_test.dir/apps_matmul_test.cpp.o.d"
  "apps_matmul_test"
  "apps_matmul_test.pdb"
  "apps_matmul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_matmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
