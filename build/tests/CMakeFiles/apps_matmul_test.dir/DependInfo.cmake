
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_matmul_test.cpp" "tests/CMakeFiles/apps_matmul_test.dir/apps_matmul_test.cpp.o" "gcc" "tests/CMakeFiles/apps_matmul_test.dir/apps_matmul_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ompss/CMakeFiles/ompss_api.dir/DependInfo.cmake"
  "/root/repo/build/src/nanos/CMakeFiles/nanos.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simcuda/CMakeFiles/simcuda.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/vt/CMakeFiles/ompss_vt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ompss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
