# Empty dependencies file for apps_matmul_test.
# This may be replaced when dependencies are built.
